// Set-associative write-back caches and the two-level private hierarchy of
// the paper's cores (Table I: 4 KB IL1, 4 KB DL1, 128 KB L2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace amps::uarch {

struct CacheConfig {
  std::uint64_t size_bytes = 4 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t associativity = 2;

  [[nodiscard]] std::uint64_t num_lines() const noexcept {
    return size_bytes / line_bytes;
  }
  [[nodiscard]] std::uint64_t num_sets() const noexcept {
    return num_lines() / associativity;
  }
  /// True when sizes are powers of two and consistent.
  [[nodiscard]] bool valid() const noexcept;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;

  [[nodiscard]] std::uint64_t accesses() const noexcept { return hits + misses; }
  [[nodiscard]] double miss_rate() const noexcept {
    const std::uint64_t a = accesses();
    return a ? static_cast<double>(misses) / static_cast<double>(a) : 0.0;
  }
};

/// One set-associative write-back, write-allocate cache with true-LRU
/// replacement. Tag-only model: no data are stored, only presence/dirty.
///
/// Layout: flat structure-of-arrays over power-of-two sets (tags, LRU
/// stamps and packed valid/dirty flags in separate dense arrays, row-major
/// by set), so the way search is a short linear scan over adjacent words
/// with no pointer chasing. `access` is on the core's per-cycle memory
/// path and is defined inline here.
class Cache {
 public:
  explicit Cache(const CacheConfig& cfg, std::string name = "cache");

  struct AccessResult {
    bool hit = false;
    bool writeback = false;           ///< a dirty victim was evicted
    std::uint64_t victim_addr = 0;    ///< base address of the evicted line
  };

  /// Looks up `addr`; on miss, allocates the line (evicting LRU).
  AccessResult access(std::uint64_t addr, bool is_write) noexcept {
    const std::uint64_t line_addr = addr >> set_shift_;
    const std::uint64_t set = line_addr & set_mask_;
    const std::uint64_t tag = line_addr >> set_bits_;
    const std::size_t base = static_cast<std::size_t>(set) * ways_;

    ++lru_clock_;
    // Victim choice (must match the original per-entry scan exactly): the
    // *last* invalid way if any; otherwise the first way with the minimal
    // LRU stamp. An invalid victim is sticky against LRU comparisons.
    std::size_t victim = base;
    for (std::size_t w = base; w < base + ways_; ++w) {
      const std::uint8_t f = flags_[w];
      if ((f & kValid) != 0 && tags_[w] == tag) {
        lru_[w] = lru_clock_;
        flags_[w] = static_cast<std::uint8_t>(f | (is_write ? kDirty : 0));
        ++stats_.hits;
        return {.hit = true, .writeback = false};
      }
      if ((f & kValid) == 0) {
        victim = w;
      } else if ((flags_[victim] & kValid) != 0 && lru_[w] < lru_[victim]) {
        victim = w;
      }
    }

    ++stats_.misses;
    const bool wb = (flags_[victim] & (kValid | kDirty)) == (kValid | kDirty);
    std::uint64_t victim_addr = 0;
    if (wb) {
      ++stats_.writebacks;
      victim_addr = ((tags_[victim] << set_bits_) | set) << set_shift_;
    }
    tags_[victim] = tag;
    lru_[victim] = lru_clock_;
    flags_[victim] =
        static_cast<std::uint8_t>(kValid | (is_write ? kDirty : 0));
    return {.hit = false, .writeback = wb, .victim_addr = victim_addr};
  }

  /// True when the line holding `addr` is currently resident (no state
  /// change; used by tests).
  [[nodiscard]] bool probe(std::uint64_t addr) const noexcept;

  /// Invalidates everything (loses dirty data — callers account for
  /// writeback traffic via stats if they care).
  void flush() noexcept;

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const CacheConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  static constexpr std::uint8_t kValid = 1;
  static constexpr std::uint8_t kDirty = 2;

  CacheConfig cfg_;
  std::string name_;
  // Flat SoA line state, sets * ways, row-major by set.
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> lru_;   // higher = more recently used
  std::vector<std::uint8_t> flags_;  // kValid | kDirty
  std::size_t ways_;
  std::uint64_t lru_clock_ = 0;
  CacheStats stats_;
  std::uint64_t set_shift_;
  std::uint64_t set_mask_;
  std::uint64_t set_bits_;
};

/// Latencies of the memory system (cycles), applied by CacheHierarchy.
struct MemoryLatencies {
  Cycles l1_hit = 2;
  Cycles l2_hit = 12;
  Cycles memory = 120;
};

/// Statistics of the optional next-line prefetcher.
struct PrefetchStats {
  std::uint64_t issued = 0;   ///< prefetches injected into DL1
  std::uint64_t useful = 0;   ///< demand hits on prefetched lines
};

/// Which level serviced a memory access (drives energy accounting).
enum class MemLevel : std::uint8_t { L1, L2, Memory };

/// Outcome of one fetch/data access through the hierarchy.
struct MemAccess {
  Cycles latency = 0;
  MemLevel level = MemLevel::L1;
};

/// A shared last-level cache with a single port: when both cores hit it in
/// the same global cycle, the later access queues behind the earlier one.
/// Models the "shared cache used for exchanging architectural states" the
/// paper's §VI-C overhead discussion mentions — after a thread swap the
/// shared L2 stays warm, so only the L1s must refill.
class SharedL2 {
 public:
  SharedL2(const CacheConfig& cfg, Cycles port_conflict_penalty = 4);

  /// Accesses the shared array at global time `now`; returns {hit, extra
  /// latency from port contention}.
  struct Result {
    bool hit = false;
    Cycles queue_delay = 0;
  };
  Result access(std::uint64_t addr, bool is_write, Cycles now) noexcept;

  [[nodiscard]] const Cache& cache() const noexcept { return cache_; }
  [[nodiscard]] std::uint64_t port_conflicts() const noexcept {
    return conflicts_;
  }

 private:
  Cache cache_;
  Cycles penalty_;
  Cycles last_access_cycle_ = ~0ULL;
  unsigned accesses_this_cycle_ = 0;
  std::uint64_t conflicts_ = 0;
};

/// A core-private IL1 + DL1 + unified L2. Returns total access latency and
/// records per-level stats; the power model charges per-access energies
/// from the same counters.
class CacheHierarchy {
 public:
  /// `prefetch_next_line`: on a DL1 demand miss, also allocate the next
  /// sequential line (simple tagged next-line prefetcher — effective for
  /// the streaming FP workloads, useless for pointer chasing).
  /// `shared_l2`: when non-null the private L2 is bypassed and all L2
  /// traffic goes to the shared array (which must outlive the hierarchy).
  CacheHierarchy(const CacheConfig& il1, const CacheConfig& dl1,
                 const CacheConfig& l2, const MemoryLatencies& lat,
                 bool prefetch_next_line = false,
                 SharedL2* shared_l2 = nullptr);

  /// Instruction fetch of the line containing `pc` at global time `now`.
  MemAccess fetch(std::uint64_t pc, Cycles now = 0) noexcept;
  /// Data load/store at `addr` at global time `now`.
  MemAccess data_access(std::uint64_t addr, bool is_write,
                        Cycles now = 0) noexcept;

  [[nodiscard]] const Cache& il1() const noexcept { return il1_; }
  [[nodiscard]] const Cache& dl1() const noexcept { return dl1_; }
  [[nodiscard]] const Cache& l2() const noexcept { return l2_; }
  [[nodiscard]] const MemoryLatencies& latencies() const noexcept { return lat_; }

  /// Memory (DRAM) accesses caused by L2 misses — used by the power model.
  [[nodiscard]] std::uint64_t memory_accesses() const noexcept {
    return memory_accesses_;
  }

  [[nodiscard]] const PrefetchStats& prefetch_stats() const noexcept {
    return prefetch_;
  }
  [[nodiscard]] bool prefetch_enabled() const noexcept {
    return prefetch_next_line_;
  }

  [[nodiscard]] bool has_shared_l2() const noexcept {
    return shared_l2_ != nullptr;
  }
  /// The L2 actually in use (private array, or the shared one).
  [[nodiscard]] const Cache& effective_l2() const noexcept {
    return shared_l2_ != nullptr ? shared_l2_->cache() : l2_;
  }
  /// L2 misses caused by *this* hierarchy's traffic — attribution stays
  /// per-core even when the array is shared.
  [[nodiscard]] std::uint64_t l2_demand_misses() const noexcept {
    return l2_demand_misses_;
  }

  void flush_all() noexcept;

 private:
  void prefetch_line(std::uint64_t line, Cycles now) noexcept;
  /// L2 lookup routed to the private or shared array.
  [[nodiscard]] MemAccess l2_access(std::uint64_t addr, bool is_write,
                                    Cycles now) noexcept;

  Cache il1_;
  Cache dl1_;
  Cache l2_;
  MemoryLatencies lat_;
  SharedL2* shared_l2_ = nullptr;
  std::uint64_t memory_accesses_ = 0;
  std::uint64_t l2_demand_misses_ = 0;
  bool prefetch_next_line_ = false;
  PrefetchStats prefetch_;
  std::uint64_t last_prefetched_line_ = ~0ULL;
};

}  // namespace amps::uarch
