// Counted pipeline resources (rename registers, queue slots). The core
// models issue queues and the ROB as real structures; bounded resources that
// only gate dispatch are modeled as counting pools with stall statistics.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace amps::uarch {

/// A named counting resource: acquire at dispatch, release at commit.
/// Tracks utilization statistics used by the power model (average occupancy
/// drives the clock-gated dynamic-energy estimate) and by tests.
/// acquire/release/tick sit on the core's per-cycle path, so they are
/// defined inline here.
class ResourcePool {
 public:
  ResourcePool(std::string name, std::uint32_t capacity);

  /// Takes `n` items; returns false (and records a stall) when unavailable.
  bool acquire(std::uint32_t n = 1) noexcept {
    if (in_use_ + n > capacity_) {
      ++stalls_;
      return false;
    }
    in_use_ += n;
    acquires_ += n;
    if (in_use_ > high_water_) high_water_ = in_use_;
    return true;
  }
  /// Returns `n` items. Asserts against over-release in debug builds.
  void release(std::uint32_t n = 1) noexcept {
    assert(in_use_ >= n && "ResourcePool over-release");
    in_use_ = in_use_ >= n ? in_use_ - n : 0;
  }

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint32_t in_use() const noexcept { return in_use_; }
  [[nodiscard]] std::uint32_t available() const noexcept {
    return capacity_ - in_use_;
  }
  [[nodiscard]] std::uint64_t acquires() const noexcept { return acquires_; }
  [[nodiscard]] std::uint64_t stalls() const noexcept { return stalls_; }
  [[nodiscard]] std::uint32_t high_water() const noexcept { return high_water_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Accumulates current occupancy; call once per simulated cycle.
  void tick() noexcept {
    occupancy_sum_ += in_use_;
    ++ticks_;
  }
  /// Folds `n` consecutive cycles of unchanged occupancy in O(1) — the
  /// quiet-window fast-forward's bulk equivalent of n tick() calls.
  void tick(std::uint64_t n) noexcept {
    occupancy_sum_ += n * in_use_;
    ticks_ += n;
  }
  /// Mean occupancy over all ticks (0 when never ticked).
  [[nodiscard]] double mean_occupancy() const noexcept {
    return ticks_ ? static_cast<double>(occupancy_sum_) /
                        static_cast<double>(ticks_)
                  : 0.0;
  }

  /// Releases everything (pipeline flush on thread swap).
  void clear() noexcept { in_use_ = 0; }

  /// Changes the capacity (core morphing reconfigures structure sizes).
  /// Only legal while the pool is empty; throws std::logic_error otherwise.
  void reset_capacity(std::uint32_t capacity);

 private:
  std::string name_;
  std::uint32_t capacity_;
  std::uint32_t in_use_ = 0;
  std::uint32_t high_water_ = 0;
  std::uint64_t acquires_ = 0;
  std::uint64_t stalls_ = 0;
  std::uint64_t occupancy_sum_ = 0;
  std::uint64_t ticks_ = 0;
};

}  // namespace amps::uarch
