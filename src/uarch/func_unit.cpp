#include "uarch/func_unit.hpp"

#include <stdexcept>

namespace amps::uarch {

FuPool::FuPool(const FuSpec& spec)
    : spec_(spec), unit_free_or_last_issue_(spec.units, 0) {
  if (spec.units == 0 || spec.latency == 0)
    throw std::invalid_argument("FuPool: units and latency must be > 0");
}

void FuPool::reset_occupancy() noexcept {
  for (Cycles& slot : unit_free_or_last_issue_) slot = 0;
}

ExecUnits::ExecUnits(const Config& cfg)
    : int_alu_(cfg.int_alu), int_mul_(cfg.int_mul), int_div_(cfg.int_div),
      fp_alu_(cfg.fp_alu), fp_mul_(cfg.fp_mul), fp_div_(cfg.fp_div) {}

const FuPool& ExecUnits::pool(isa::InstrClass cls) const {
  switch (cls) {
    case isa::InstrClass::IntAlu: return int_alu_;
    case isa::InstrClass::IntMul: return int_mul_;
    case isa::InstrClass::IntDiv: return int_div_;
    case isa::InstrClass::FpAlu: return fp_alu_;
    case isa::InstrClass::FpMul: return fp_mul_;
    case isa::InstrClass::FpDiv: return fp_div_;
    default: throw std::invalid_argument("ExecUnits: not an ALU class");
  }
}

void ExecUnits::reset_occupancy() noexcept {
  int_alu_.reset_occupancy();
  int_mul_.reset_occupancy();
  int_div_.reset_occupancy();
  fp_alu_.reset_occupancy();
  fp_mul_.reset_occupancy();
  fp_div_.reset_occupancy();
}

}  // namespace amps::uarch
