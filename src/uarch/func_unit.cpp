#include "uarch/func_unit.hpp"

#include <stdexcept>

namespace amps::uarch {

FuPool::FuPool(const FuSpec& spec)
    : spec_(spec), unit_free_or_last_issue_(spec.units, 0) {
  if (spec.units == 0 || spec.latency == 0)
    throw std::invalid_argument("FuPool: units and latency must be > 0");
}

Cycles FuPool::try_issue(Cycles now) noexcept {
  // Each slot stores the first cycle at which the unit can accept a new op:
  // a pipelined unit frees its issue stage the next cycle, a non-pipelined
  // unit only when the whole op completes.
  for (Cycles& slot : unit_free_or_last_issue_) {
    if (slot <= now) {
      slot = now + (spec_.pipelined ? 1 : spec_.latency);
      ++issued_;
      return now + spec_.latency;
    }
  }
  return 0;
}

void FuPool::reset_occupancy() noexcept {
  for (Cycles& slot : unit_free_or_last_issue_) slot = 0;
}

ExecUnits::ExecUnits(const Config& cfg)
    : int_alu_(cfg.int_alu), int_mul_(cfg.int_mul), int_div_(cfg.int_div),
      fp_alu_(cfg.fp_alu), fp_mul_(cfg.fp_mul), fp_div_(cfg.fp_div) {}

FuPool* ExecUnits::pool_for(isa::InstrClass cls) noexcept {
  switch (cls) {
    case isa::InstrClass::IntAlu: return &int_alu_;
    case isa::InstrClass::IntMul: return &int_mul_;
    case isa::InstrClass::IntDiv: return &int_div_;
    case isa::InstrClass::FpAlu: return &fp_alu_;
    case isa::InstrClass::FpMul: return &fp_mul_;
    case isa::InstrClass::FpDiv: return &fp_div_;
    default: return nullptr;
  }
}

Cycles ExecUnits::try_issue(isa::InstrClass cls, Cycles now) noexcept {
  FuPool* pool = pool_for(cls);
  return pool != nullptr ? pool->try_issue(now) : 0;
}

const FuPool& ExecUnits::pool(isa::InstrClass cls) const {
  switch (cls) {
    case isa::InstrClass::IntAlu: return int_alu_;
    case isa::InstrClass::IntMul: return int_mul_;
    case isa::InstrClass::IntDiv: return int_div_;
    case isa::InstrClass::FpAlu: return fp_alu_;
    case isa::InstrClass::FpMul: return fp_mul_;
    case isa::InstrClass::FpDiv: return fp_div_;
    default: throw std::invalid_argument("ExecUnits: not an ALU class");
  }
}

void ExecUnits::reset_occupancy() noexcept {
  int_alu_.reset_occupancy();
  int_mul_.reset_occupancy();
  int_div_.reset_occupancy();
  fp_alu_.reset_occupancy();
  fp_mul_.reset_occupancy();
  fp_div_.reset_occupancy();
}

}  // namespace amps::uarch
