#include "uarch/cache.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace amps::uarch {

bool CacheConfig::valid() const noexcept {
  if (size_bytes == 0 || line_bytes == 0 || associativity == 0) return false;
  if (!std::has_single_bit(size_bytes) || !std::has_single_bit(line_bytes))
    return false;
  if (size_bytes % (static_cast<std::uint64_t>(line_bytes) * associativity) != 0)
    return false;
  return std::has_single_bit(num_sets());
}

Cache::Cache(const CacheConfig& cfg, std::string name)
    : cfg_(cfg), name_(std::move(name)) {
  if (!cfg.valid()) throw std::invalid_argument("Cache: invalid config " + name_);
  const std::size_t n = static_cast<std::size_t>(cfg.num_lines());
  tags_.assign(n, 0);
  lru_.assign(n, 0);
  flags_.assign(n, 0);
  ways_ = cfg.associativity;
  set_shift_ = static_cast<std::uint64_t>(std::countr_zero(
      static_cast<std::uint64_t>(cfg.line_bytes)));
  set_mask_ = cfg.num_sets() - 1;
  set_bits_ = static_cast<std::uint64_t>(std::countr_zero(set_mask_ + 1));
}

bool Cache::probe(std::uint64_t addr) const noexcept {
  const std::uint64_t line_addr = addr >> set_shift_;
  const std::uint64_t set = line_addr & set_mask_;
  const std::uint64_t tag = line_addr >> set_bits_;
  const std::size_t base = static_cast<std::size_t>(set) * ways_;
  for (std::size_t w = base; w < base + ways_; ++w)
    if ((flags_[w] & kValid) != 0 && tags_[w] == tag) return true;
  return false;
}

void Cache::flush() noexcept {
  std::fill(flags_.begin(), flags_.end(), std::uint8_t{0});
  std::fill(tags_.begin(), tags_.end(), std::uint64_t{0});
  std::fill(lru_.begin(), lru_.end(), std::uint64_t{0});
}

SharedL2::SharedL2(const CacheConfig& cfg, Cycles port_conflict_penalty)
    : cache_(cfg, "sharedL2"), penalty_(port_conflict_penalty) {}

SharedL2::Result SharedL2::access(std::uint64_t addr, bool is_write,
                                  Cycles now) noexcept {
  Result r;
  if (now == last_access_cycle_) {
    ++accesses_this_cycle_;
    ++conflicts_;
    r.queue_delay = penalty_ * accesses_this_cycle_;
  } else {
    last_access_cycle_ = now;
    accesses_this_cycle_ = 0;
  }
  r.hit = cache_.access(addr, is_write).hit;
  return r;
}

CacheHierarchy::CacheHierarchy(const CacheConfig& il1, const CacheConfig& dl1,
                               const CacheConfig& l2,
                               const MemoryLatencies& lat,
                               bool prefetch_next_line, SharedL2* shared_l2)
    : il1_(il1, "IL1"), dl1_(dl1, "DL1"), l2_(l2, "L2"), lat_(lat),
      shared_l2_(shared_l2), prefetch_next_line_(prefetch_next_line) {}

MemAccess CacheHierarchy::l2_access(std::uint64_t addr, bool is_write,
                                    Cycles now) noexcept {
  if (shared_l2_ != nullptr) {
    const SharedL2::Result r = shared_l2_->access(addr, is_write, now);
    if (r.hit)
      return {.latency = lat_.l2_hit + r.queue_delay, .level = MemLevel::L2};
    ++memory_accesses_;
    ++l2_demand_misses_;
    return {.latency = lat_.memory + r.queue_delay, .level = MemLevel::Memory};
  }
  const auto r = l2_.access(addr, is_write);
  if (r.hit) return {.latency = lat_.l2_hit, .level = MemLevel::L2};
  if (r.writeback) ++memory_accesses_;
  ++memory_accesses_;
  ++l2_demand_misses_;
  return {.latency = lat_.memory, .level = MemLevel::Memory};
}

MemAccess CacheHierarchy::fetch(std::uint64_t pc, Cycles now) noexcept {
  if (il1_.access(pc, false).hit)
    return {.latency = lat_.l1_hit, .level = MemLevel::L1};
  return l2_access(pc, false, now);
}

MemAccess CacheHierarchy::data_access(std::uint64_t addr, bool is_write,
                                      Cycles now) noexcept {
  const std::uint64_t line = addr >> 6;
  const auto l1 = dl1_.access(addr, is_write);
  if (l1.hit) {
    // Tagged prefetching: the *first* demand hit on a prefetched line both
    // proves the prefetch useful and triggers the next one, so a steady
    // stream stays fully covered.
    if (prefetch_next_line_ && line == last_prefetched_line_) {
      ++prefetch_.useful;
      last_prefetched_line_ = ~0ULL;  // count each prefetch at most once
      prefetch_line(line + 1, now);
    }
    return {.latency = lat_.l1_hit, .level = MemLevel::L1};
  }
  // Miss (and any dirty victim writeback) goes to L2; write-allocate.
  if (l1.writeback) (void)l2_access(l1.victim_addr, true, now);
  const MemAccess out = l2_access(addr, false, now);

  if (prefetch_next_line_) prefetch_line(line + 1, now);
  return out;
}

void CacheHierarchy::prefetch_line(std::uint64_t line, Cycles now) noexcept {
  // Off the critical path: latency is hidden, only the traffic/energy is
  // visible through the cache statistics.
  const std::uint64_t addr = line << 6;
  const auto pf = dl1_.access(addr, false);
  if (pf.hit) return;
  if (pf.writeback) (void)l2_access(pf.victim_addr, true, now);
  (void)l2_access(addr, false, now);
  ++prefetch_.issued;
  last_prefetched_line_ = line;
}

void CacheHierarchy::flush_all() noexcept {
  il1_.flush();
  dl1_.flush();
  l2_.flush();
}

}  // namespace amps::uarch
