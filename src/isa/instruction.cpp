#include "isa/instruction.hpp"

namespace amps::isa {

const char* to_string(InstrClass cls) noexcept {
  switch (cls) {
    case InstrClass::IntAlu: return "IntAlu";
    case InstrClass::IntMul: return "IntMul";
    case InstrClass::IntDiv: return "IntDiv";
    case InstrClass::FpAlu: return "FpAlu";
    case InstrClass::FpMul: return "FpMul";
    case InstrClass::FpDiv: return "FpDiv";
    case InstrClass::Load: return "Load";
    case InstrClass::Store: return "Store";
    case InstrClass::Branch: return "Branch";
  }
  return "?";
}

}  // namespace amps::isa
