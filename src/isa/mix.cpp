#include "isa/mix.hpp"

#include <cmath>

namespace amps::isa {

double InstrMix::total() const noexcept {
  double acc = 0.0;
  for (double v : f_) acc += v;
  return acc;
}

void InstrMix::normalize() noexcept {
  const double t = total();
  if (t <= 0.0) return;
  for (double& v : f_) v /= t;
}

bool InstrMix::valid(double tol) const noexcept {
  for (double v : f_)
    if (v < 0.0) return false;
  return std::fabs(total() - 1.0) <= tol;
}

double InstrMix::int_fraction() const noexcept {
  return (*this)[InstrClass::IntAlu] + (*this)[InstrClass::IntMul] +
         (*this)[InstrClass::IntDiv];
}

double InstrMix::fp_fraction() const noexcept {
  return (*this)[InstrClass::FpAlu] + (*this)[InstrClass::FpMul] +
         (*this)[InstrClass::FpDiv];
}

double InstrMix::mem_fraction() const noexcept {
  return (*this)[InstrClass::Load] + (*this)[InstrClass::Store];
}

double InstrMix::branch_fraction() const noexcept {
  return (*this)[InstrClass::Branch];
}

InstrMix InstrMix::lerp(const InstrMix& a, const InstrMix& b, double t) noexcept {
  InstrMix out;
  for (InstrClass cls : kAllInstrClasses)
    out[cls] = (1.0 - t) * a[cls] + t * b[cls];
  return out;
}

InstrMix InstrMix::from_aggregate(double int_frac, double fp_frac,
                                  double mem_frac, double branch_frac) noexcept {
  InstrMix m;
  m[InstrClass::IntAlu] = int_frac * 0.85;
  m[InstrClass::IntMul] = int_frac * 0.12;
  m[InstrClass::IntDiv] = int_frac * 0.03;
  m[InstrClass::FpAlu] = fp_frac * 0.55;
  m[InstrClass::FpMul] = fp_frac * 0.33;
  m[InstrClass::FpDiv] = fp_frac * 0.12;
  m[InstrClass::Load] = mem_frac * (2.0 / 3.0);
  m[InstrClass::Store] = mem_frac * (1.0 / 3.0);
  m[InstrClass::Branch] = branch_frac;
  m.normalize();
  return m;
}

InstrCount InstrCounts::int_count() const noexcept {
  return count(InstrClass::IntAlu) + count(InstrClass::IntMul) +
         count(InstrClass::IntDiv);
}

InstrCount InstrCounts::fp_count() const noexcept {
  return count(InstrClass::FpAlu) + count(InstrClass::FpMul) +
         count(InstrClass::FpDiv);
}

InstrCount InstrCounts::mem_count() const noexcept {
  return count(InstrClass::Load) + count(InstrClass::Store);
}

InstrCount InstrCounts::branch_count() const noexcept {
  return count(InstrClass::Branch);
}

double InstrCounts::int_pct() const noexcept {
  const InstrCount t = total();
  return t ? 100.0 * static_cast<double>(int_count()) / static_cast<double>(t)
           : 0.0;
}

double InstrCounts::fp_pct() const noexcept {
  const InstrCount t = total();
  return t ? 100.0 * static_cast<double>(fp_count()) / static_cast<double>(t)
           : 0.0;
}

InstrMix InstrCounts::to_mix() const noexcept {
  InstrMix m;
  const InstrCount t = total();
  if (t == 0) return m;
  for (InstrClass cls : kAllInstrClasses)
    m[cls] = static_cast<double>(count(cls)) / static_cast<double>(t);
  return m;
}

InstrCounts& InstrCounts::operator+=(const InstrCounts& rhs) noexcept {
  for (std::size_t i = 0; i < kNumInstrClasses; ++i) c_[i] += rhs.c_[i];
  total_ += rhs.total_;
  return *this;
}

InstrCounts InstrCounts::since(const InstrCounts& earlier) const noexcept {
  InstrCounts out;
  for (std::size_t i = 0; i < kNumInstrClasses; ++i)
    out.c_[i] = c_[i] - earlier.c_[i];
  out.total_ = total_ - earlier.total_;
  return out;
}

}  // namespace amps::isa
