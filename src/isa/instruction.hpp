// Micro-op model. The simulator consumes a dynamic stream of decoded
// micro-ops; there is no static program text (workloads are statistical
// models, see workload/), so a micro-op carries everything the pipeline
// needs: class, synthetic PC, dependency distances and memory address.
#pragma once

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace amps::isa {

/// Operation classes. These mirror the unit taxonomy of the paper's
/// Table II (FP/INT x DIV/MUL/ALU) plus memory and control.
enum class InstrClass : std::uint8_t {
  IntAlu = 0,
  IntMul,
  IntDiv,
  FpAlu,
  FpMul,
  FpDiv,
  Load,
  Store,
  Branch,
};

inline constexpr std::size_t kNumInstrClasses = 9;

/// All classes, for iteration.
inline constexpr std::array<InstrClass, kNumInstrClasses> kAllInstrClasses = {
    InstrClass::IntAlu, InstrClass::IntMul, InstrClass::IntDiv,
    InstrClass::FpAlu,  InstrClass::FpMul,  InstrClass::FpDiv,
    InstrClass::Load,   InstrClass::Store,  InstrClass::Branch,
};

const char* to_string(InstrClass cls) noexcept;

/// True for FpAlu/FpMul/FpDiv — the paper's "%FP" counter counts exactly
/// these (floating-point arithmetic), not FP loads/stores.
constexpr bool is_fp(InstrClass cls) noexcept {
  return cls == InstrClass::FpAlu || cls == InstrClass::FpMul ||
         cls == InstrClass::FpDiv;
}

/// True for IntAlu/IntMul/IntDiv — the paper's "%INT" counter.
constexpr bool is_int(InstrClass cls) noexcept {
  return cls == InstrClass::IntAlu || cls == InstrClass::IntMul ||
         cls == InstrClass::IntDiv;
}

constexpr bool is_mem(InstrClass cls) noexcept {
  return cls == InstrClass::Load || cls == InstrClass::Store;
}

constexpr bool is_branch(InstrClass cls) noexcept {
  return cls == InstrClass::Branch;
}

/// True when the op writes a floating-point destination register (consumes
/// an FP rename register / FP issue-queue slot).
constexpr bool writes_fp_reg(InstrClass cls) noexcept { return is_fp(cls); }

/// One dynamic micro-op.
struct MicroOp {
  InstrClass cls = InstrClass::IntAlu;
  /// Synthetic program counter; drives the branch predictor and I-cache.
  std::uint64_t pc = 0;
  /// Effective address for Load/Store; 0 otherwise.
  std::uint64_t mem_addr = 0;
  /// Distances (in dynamic instructions, looking backwards) to the producers
  /// of the two source operands. 0 means "no register dependence" or the
  /// producer already retired far in the past.
  std::uint16_t dep1 = 0;
  std::uint16_t dep2 = 0;
  /// Architectural branch outcome (Branch only).
  bool branch_taken = false;
};

}  // namespace amps::isa
