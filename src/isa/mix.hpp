// Instruction-mix vectors: fractions per InstrClass. Used both as workload
// model parameters (workload/) and as committed-instruction counters
// observed by the hardware monitor (core/).
#pragma once

#include <array>
#include <cstddef>

#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace amps::isa {

/// Fractions per instruction class; a valid mix is non-negative and sums
/// to ~1. Accessors use InstrClass for type safety.
class InstrMix {
 public:
  constexpr InstrMix() = default;

  constexpr double operator[](InstrClass cls) const noexcept {
    return f_[static_cast<std::size_t>(cls)];
  }
  constexpr double& operator[](InstrClass cls) noexcept {
    return f_[static_cast<std::size_t>(cls)];
  }

  /// Sum of all fractions.
  [[nodiscard]] double total() const noexcept;
  /// Scales so total() == 1. No-op on an all-zero mix.
  void normalize() noexcept;
  /// True when non-negative and total() within `tol` of 1.
  [[nodiscard]] bool valid(double tol = 1e-6) const noexcept;

  /// Combined fraction of integer arithmetic ops (paper's %INT).
  [[nodiscard]] double int_fraction() const noexcept;
  /// Combined fraction of floating-point arithmetic ops (paper's %FP).
  [[nodiscard]] double fp_fraction() const noexcept;
  /// Combined fraction of loads + stores.
  [[nodiscard]] double mem_fraction() const noexcept;
  /// Fraction of branches.
  [[nodiscard]] double branch_fraction() const noexcept;

  /// Linear interpolation between two mixes: (1-t)*a + t*b.
  static InstrMix lerp(const InstrMix& a, const InstrMix& b, double t) noexcept;

  /// Convenience builder from the aggregate knobs workload models use.
  /// Splits `int_frac` over ALU/MUL/DIV as 85/12/3 and `fp_frac` over
  /// ALU/MUL/DIV as 55/33/12 (typical SPEC-like arithmetic breakdowns),
  /// and `mem_frac` over loads/stores 2:1.
  static InstrMix from_aggregate(double int_frac, double fp_frac,
                                 double mem_frac, double branch_frac) noexcept;

 private:
  std::array<double, kNumInstrClasses> f_{};
};

/// Committed-instruction counters per class (hardware-counter model).
class InstrCounts {
 public:
  constexpr InstrCounts() = default;

  void add(InstrClass cls, InstrCount n = 1) noexcept {
    c_[static_cast<std::size_t>(cls)] += n;
    total_ += n;
  }
  [[nodiscard]] InstrCount count(InstrClass cls) const noexcept {
    return c_[static_cast<std::size_t>(cls)];
  }
  [[nodiscard]] InstrCount total() const noexcept { return total_; }
  [[nodiscard]] InstrCount int_count() const noexcept;
  [[nodiscard]] InstrCount fp_count() const noexcept;
  [[nodiscard]] InstrCount mem_count() const noexcept;
  [[nodiscard]] InstrCount branch_count() const noexcept;

  /// Percentage (0..100) of integer arithmetic ops; 0 when empty.
  [[nodiscard]] double int_pct() const noexcept;
  /// Percentage (0..100) of floating-point arithmetic ops; 0 when empty.
  [[nodiscard]] double fp_pct() const noexcept;

  /// Empirical mix (fractions); all-zero when no instructions counted.
  [[nodiscard]] InstrMix to_mix() const noexcept;

  void reset() noexcept {
    c_.fill(0);
    total_ = 0;
  }

  InstrCounts& operator+=(const InstrCounts& rhs) noexcept;
  /// Element-wise difference (this - rhs); callers guarantee monotonicity.
  [[nodiscard]] InstrCounts since(const InstrCounts& earlier) const noexcept;

 private:
  std::array<InstrCount, kNumInstrClasses> c_{};
  InstrCount total_ = 0;  ///< running sum, so total() is O(1) on hot paths
};

}  // namespace amps::isa
