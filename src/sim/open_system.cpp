#include "sim/open_system.hpp"

#include <cassert>
#include <stdexcept>

#include "common/stats.hpp"

namespace amps::sim {

const char* to_string(ThreadState state) noexcept {
  switch (state) {
    case ThreadState::kPending: return "pending";
    case ThreadState::kQueued: return "queued";
    case ThreadState::kRunning: return "running";
    case ThreadState::kBlocked: return "blocked";
    case ThreadState::kExited: return "exited";
  }
  return "?";
}

const char* to_string(StallReason reason) noexcept {
  switch (reason) {
    case StallReason::kIo: return "io";
  }
  return "?";
}

OpenSystem::OpenSystem(std::vector<CoreConfig> configs, Cycles swap_overhead,
                       OpenConfig cfg)
    : system_(std::move(configs), swap_overhead),
      cfg_(cfg),
      queues_(system_.num_cores()),
      slice_start_(system_.num_cores(), 0) {}

void OpenSystem::admit(ThreadContext* t, Cycles at) {
  assert(t != nullptr);
  if (!records_.empty() && at < records_.back().arrival)
    throw std::invalid_argument(
        "OpenSystem::admit: arrivals must be non-decreasing");
  if (arrival_cursor_ != 0)
    throw std::logic_error("OpenSystem::admit: events already serviced");
  OpenThreadRecord rec;
  rec.thread = t;
  rec.arrival = at;
  rec.state_since = at;
  records_.push_back(rec);
}

void OpenSystem::add_listener(ThreadLifecycleListener* listener) {
  assert(listener != nullptr);
  listeners_.push_back(listener);
}

bool OpenSystem::attached(const OpenThreadRecord& rec) const noexcept {
  return rec.state == ThreadState::kRunning && !system_.migrating(rec.core) &&
         system_.thread_on(rec.core) == rec.thread;
}

void OpenSystem::enqueue_shortest(std::size_t rec) {
  // Join-shortest-queue over (queue depth + occupancy), ties to the lowest
  // core index. With empty queues and empty cores this lands thread i on
  // core i in admission order — exactly the closed-system attach layout.
  std::size_t best = 0;
  std::size_t best_depth = std::numeric_limits<std::size_t>::max();
  for (std::size_t c = 0; c < queues_.size(); ++c) {
    const std::size_t depth =
        queues_[c].size() + (system_.thread_on(c) != nullptr ? 1 : 0);
    if (depth < best_depth) {
      best = c;
      best_depth = depth;
    }
  }
  enqueue_on(best, rec);
}

void OpenSystem::enqueue_on(std::size_t core, std::size_t rec) {
  queues_[core].push_back(rec);
  records_[rec].core = core;
  records_[rec].state = ThreadState::kQueued;
  records_[rec].state_since = now();
}

void OpenSystem::dispatch(std::size_t core, std::size_t rec) {
  OpenThreadRecord& r = records_[rec];
  r.queued_cycles += now() - r.state_since;
  const bool migrated = r.started && r.core != core;
  // A thread's very first dispatch is free (nothing architectural moves);
  // every re-dispatch pays the configured handoff idle time.
  const Cycles delay = r.started ? cfg_.dispatch_overhead : 0;
  system_.dispatch_thread(core, r.thread, delay);
  r.state = ThreadState::kRunning;
  r.state_since = now();
  r.core = core;
  ++r.dispatches;
  ++dispatches_;
  if (migrated) {
    ++r.migrations;
    ++migrations_;
  }
  slice_start_[core] = now() + delay;
  if (!r.started) {
    r.started = true;
    r.first_dispatch = now();
    fire_start(rec, core);
  }
}

void OpenSystem::fire_start(std::size_t rec, std::size_t core) {
  for (ThreadLifecycleListener* l : listeners_)
    l->thread_start(records_[rec].thread->id(), now(), core);
}

void OpenSystem::fire_stall(std::size_t rec, StallReason reason) {
  for (ThreadLifecycleListener* l : listeners_)
    l->thread_stall(records_[rec].thread->id(), reason, now());
}

void OpenSystem::fire_resume(std::size_t rec) {
  for (ThreadLifecycleListener* l : listeners_)
    l->thread_resume(records_[rec].thread->id(), now());
}

void OpenSystem::fire_exit(std::size_t rec) {
  for (ThreadLifecycleListener* l : listeners_)
    l->thread_exit(records_[rec].thread->id(), now());
}

void OpenSystem::service_events() {
  const Cycles t = now();

  // 0. Placement re-sync: an NCoreScheduler may have swapped running
  // threads between cores (MulticoreSystem::swap_threads) since the last
  // service. Follow each running thread to the slot that actually holds
  // it, so exits, stalls, and the commit bound keep tracking swapped
  // threads. (The closed degenerate path needs this too: without it a
  // swapped thread would drop out of next_commit_event_budget() and the
  // batch bound would diverge from the closed engine's.)
  for (OpenThreadRecord& r : records_) {
    if (r.state != ThreadState::kRunning) continue;
    if (system_.thread_on(r.core) == r.thread) continue;
    for (std::size_t c = 0; c < system_.num_cores(); ++c) {
      if (system_.thread_on(c) == r.thread) {
        r.core = c;
        break;
      }
    }
  }

  // 1. Arrivals (admission order; schedule is sorted by arrival).
  while (arrival_cursor_ < records_.size() &&
         records_[arrival_cursor_].arrival <= t) {
    enqueue_shortest(arrival_cursor_);
    ++arrival_cursor_;
  }

  // 2. Exits — before stalls and preemption, so a job that completes on
  // its stall boundary exits rather than blocking, and no queued thread
  // can ever hold a completed job.
  for (std::size_t i = 0; i < records_.size(); ++i) {
    OpenThreadRecord& r = records_[i];
    if (!attached(r) || !r.thread->job_complete()) continue;
    system_.undispatch_thread(r.core);
    r.state = ThreadState::kExited;
    r.state_since = t;
    r.exit_cycle = t;
    fire_exit(i);
  }

  // 3. Modeled-I/O stalls.
  for (std::size_t i = 0; i < records_.size(); ++i) {
    OpenThreadRecord& r = records_[i];
    if (!attached(r) || !r.thread->io_due()) continue;
    system_.undispatch_thread(r.core);
    r.state = ThreadState::kBlocked;
    r.state_since = t;
    r.resume_at = t + r.thread->io_profile().stall_latency;
    r.thread->schedule_next_stall();
    ++r.stalls;
    fire_stall(i, StallReason::kIo);
  }

  // 4. I/O resumes — back onto the last core's queue (cache affinity; the
  // steal pass below rebalances if that core is loaded).
  for (std::size_t i = 0; i < records_.size(); ++i) {
    OpenThreadRecord& r = records_[i];
    if (r.state != ThreadState::kBlocked || r.resume_at > t) continue;
    r.blocked_cycles += t - r.state_since;
    ++r.resumes;
    enqueue_on(r.core, i);
    fire_resume(i);
  }

  // 5. Quantum expiries — only when a waiter exists on that core's queue
  // (preempting onto an empty queue would just round-trip the pipeline).
  // Preemption is a queueing transition, not a lifecycle stall.
  if (cfg_.quantum != 0) {
    for (std::size_t c = 0; c < queues_.size(); ++c) {
      if (system_.thread_on(c) == nullptr || system_.migrating(c)) continue;
      if (queues_[c].empty() || t < slice_start_[c] + cfg_.quantum) continue;
      for (std::size_t i = 0; i < records_.size(); ++i) {
        OpenThreadRecord& r = records_[i];
        if (r.thread != system_.thread_on(c)) continue;
        system_.undispatch_thread(c);
        ++r.preemptions;
        ++preemptions_;
        enqueue_on(c, i);
        break;
      }
    }
  }

  // 6. Fill idle cores: own queue first, then steal the front of the
  // longest other queue (ties to the lowest index) — work-conserving.
  for (std::size_t c = 0; c < queues_.size(); ++c) {
    if (system_.thread_on(c) != nullptr || system_.migrating(c)) continue;
    std::size_t from = c;
    if (queues_[c].empty()) {
      if (!cfg_.steal) continue;
      std::size_t longest = 0;
      for (std::size_t o = 0; o < queues_.size(); ++o) {
        if (o == c) continue;
        if (queues_[o].size() > longest) {
          longest = queues_[o].size();
          from = o;
        }
      }
      if (from == c) continue;  // every other queue is empty too
      ++steals_;
    }
    const std::size_t rec = queues_[from].front();
    queues_[from].pop_front();
    dispatch(c, rec);
  }
}

Cycles OpenSystem::next_event_at() const noexcept {
  Cycles earliest = kNoEvent;
  if (arrival_cursor_ < records_.size())
    earliest = std::min(earliest, records_[arrival_cursor_].arrival);
  for (const OpenThreadRecord& r : records_)
    if (r.state == ThreadState::kBlocked)
      earliest = std::min(earliest, r.resume_at);
  // A migration window (swap or delayed dispatch) hides that core's
  // events from the checks below; servicing again the cycle it ends
  // keeps every deferred exit / stall / expiry at a batch-independent
  // cycle.
  earliest = std::min(earliest, system_.next_resume_at());
  if (cfg_.quantum != 0) {
    for (std::size_t c = 0; c < queues_.size(); ++c) {
      if (system_.thread_on(c) == nullptr || system_.migrating(c)) continue;
      if (queues_[c].empty()) continue;  // expiry is a no-op until a waiter
      earliest = std::min(earliest, slice_start_[c] + cfg_.quantum);
    }
  }
  return earliest;
}

InstrCount OpenSystem::next_commit_event_budget() const noexcept {
  // Every kRunning thread counts, including mid-migration ones: a
  // migrating thread commits nothing until it re-attaches, but it
  // resumes *inside* the next batch, so dropping it here would let the
  // batch overrun its job end or stall point (the closed engine bounds
  // over all threads — bit-identity needs the same here).
  InstrCount budget = kNoCommitBound;
  for (const OpenThreadRecord& r : records_) {
    if (r.state != ThreadState::kRunning) continue;
    const InstrCount committed = r.thread->committed_total();
    if (r.thread->job_length() != 0 && committed < r.thread->job_length())
      budget = std::min(budget, r.thread->job_length() - committed);
    if (r.thread->io_profile().blocking() &&
        committed < r.thread->next_stall())
      budget = std::min(budget, r.thread->next_stall() - committed);
  }
  return budget;
}

std::size_t OpenSystem::count(ThreadState state) const noexcept {
  std::size_t n = 0;
  for (const OpenThreadRecord& r : records_) n += r.state == state ? 1 : 0;
  return n;
}

bool OpenSystem::all_exited() const noexcept {
  for (const OpenThreadRecord& r : records_)
    if (r.state != ThreadState::kExited) return false;
  return !records_.empty();
}

bool OpenSystem::work_conserving() const noexcept {
  bool any_waiting = false;
  for (const auto& q : queues_) any_waiting = any_waiting || !q.empty();
  for (std::size_t c = 0; c < queues_.size(); ++c) {
    const bool idle =
        system_.thread_on(c) == nullptr && !system_.migrating(c);
    if (!idle) continue;
    if (!queues_[c].empty()) return false;
    if (cfg_.steal && any_waiting) return false;
  }
  return true;
}

}  // namespace amps::sim
