// DualCoreSystem: the paper's heterogeneous dual-core running two thread
// contexts, with the thread-swap machinery (pipeline flush, architectural
// state exchange over `swap_overhead` cycles, cold caches afterwards).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>

#include "common/types.hpp"
#include "sim/core.hpp"
#include "sim/core_config.hpp"
#include "sim/thread_context.hpp"
#include "uarch/cache.hpp"

namespace amps::sim {

class DualCoreSystem {
 public:
  /// Core 0 takes `a`, core 1 takes `b`. The canonical AMP uses
  /// int_core_config() and fp_core_config().
  /// `shared_l2`: when set, both cores share one L2 of this geometry (with
  /// port contention) instead of their private arrays — the shared-cache
  /// organization the paper's §VI-C overhead discussion contrasts against:
  /// after a swap the L2 stays warm and migration is cheaper.
  DualCoreSystem(const CoreConfig& a, const CoreConfig& b,
                 Cycles swap_overhead = 100,
                 std::optional<uarch::CacheConfig> shared_l2 = std::nullopt);

  /// The shared L2, when configured.
  [[nodiscard]] const uarch::SharedL2* shared_l2() const noexcept {
    return shared_l2_.get();
  }

  /// Binds the two threads (t0 to core 0, t1 to core 1). Must be called
  /// once before stepping.
  void attach_threads(ThreadContext* t0, ThreadContext* t1);

  /// Requests a thread swap. Both pipelines flush immediately; the cores
  /// sit idle (leaking) for `swap_overhead` cycles while architectural
  /// state migrates, then resume with exchanged threads.
  void swap_threads();

  /// Core morphing (paper ref. [5]): flushes both pipelines, rebuilds the
  /// cores to the given configurations (cache geometry must be unchanged),
  /// optionally exchanges the two threads in the same step, and idles for
  /// `overhead` cycles before resuming. No-op request while a previous
  /// reconfiguration is still in flight.
  void morph_cores(const CoreConfig& cfg0, const CoreConfig& cfg1,
                   Cycles overhead, bool also_swap_threads = false);

  /// Number of morph reconfigurations performed.
  [[nodiscard]] std::uint64_t morph_count() const noexcept { return morphs_; }

  /// Advances the whole system one clock cycle.
  void step();

  /// Batched stepping for the harness fast path: advances until `now()`
  /// reaches `until_cycle`, stopping early at the end of the first cycle in
  /// which either thread's committed-instruction count has advanced by at
  /// least `commit_budget` since entry. Always steps at least one cycle
  /// when `until_cycle > now()`. Equivalent to calling step() in a loop —
  /// cycle-for-cycle identical state evolution. Returns cycles stepped.
  Cycles step_until(Cycles until_cycle, InstrCount commit_budget);

  /// Steps until both threads have committed at least `target` instructions
  /// or `max_cycles` elapsed (0 = no cycle bound). Returns cycles stepped.
  Cycles run_until_committed(InstrCount target, Cycles max_cycles = 0);

  [[nodiscard]] Cycles now() const noexcept { return now_; }
  [[nodiscard]] bool swap_in_progress() const noexcept { return swap_pending_; }
  [[nodiscard]] std::uint64_t swap_count() const noexcept { return swaps_; }
  [[nodiscard]] Cycles swap_overhead() const noexcept { return swap_overhead_; }

  [[nodiscard]] Core& core(std::size_t i) { return *cores_[i]; }
  [[nodiscard]] const Core& core(std::size_t i) const { return *cores_[i]; }

  /// The thread currently assigned to core `i` (also valid mid-swap, when
  /// it reports the post-swap assignment).
  [[nodiscard]] ThreadContext* thread_on(std::size_t i) const noexcept {
    return threads_[i];
  }

  /// Core index the thread with `tid` is (or will be) assigned to.
  [[nodiscard]] std::size_t core_of(ThreadId tid) const;

  /// Live cumulative energy of a thread, including the not-yet-settled
  /// share accrued since it was attached to its current core.
  [[nodiscard]] Energy live_energy(const ThreadContext& t) const;

  /// Live cumulative L2 misses attributed to a thread (settled + current
  /// attachment).
  [[nodiscard]] std::uint64_t live_l2_misses(const ThreadContext& t) const;

  /// Total energy burned by both cores since construction.
  [[nodiscard]] Energy total_energy() const noexcept {
    return cores_[0]->energy() + cores_[1]->energy();
  }

 private:
  /// O(1) jump through a provably-idle span: a pending swap window (both
  /// cores detached, leakage only) or a window where both cores are
  /// quiescent (each tick a counter bump). Advances now_ by the jumped
  /// span, never past `limit`, and returns the cycles jumped (0 when not
  /// idle). Bit-identical to stepping cycle by cycle.
  Cycles idle_fast_forward(Cycles limit);

  std::unique_ptr<uarch::SharedL2> shared_l2_;  // must precede cores_
  std::array<std::unique_ptr<Core>, 2> cores_;
  std::array<ThreadContext*, 2> threads_{};  // logical assignment
  Cycles now_ = 0;
  Cycles swap_overhead_;
  bool swap_pending_ = false;
  Cycles swap_resume_at_ = 0;
  Energy swap_idle_energy_start_ = 0.0;
  std::uint64_t swaps_ = 0;
  std::uint64_t morphs_ = 0;
};

}  // namespace amps::sim
