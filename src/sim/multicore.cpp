#include "sim/multicore.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "common/stats.hpp"

namespace amps::sim {

MulticoreSystem::MulticoreSystem(std::vector<CoreConfig> configs,
                                 Cycles swap_overhead)
    : swap_overhead_(swap_overhead) {
  if (configs.size() < 2)
    throw std::invalid_argument("MulticoreSystem: need at least 2 cores");
  slots_.reserve(configs.size());
  for (auto& cfg : configs) {
    Slot slot;
    slot.core = std::make_unique<Core>(cfg);
    slots_.push_back(std::move(slot));
  }
}

void MulticoreSystem::attach_threads(
    const std::vector<ThreadContext*>& threads) {
  if (threads.size() != slots_.size())
    throw std::invalid_argument("MulticoreSystem: thread/core count mismatch");
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    assert(threads[i] != nullptr);
    slots_[i].thread = threads[i];
    slots_[i].core->attach(threads[i]);
  }
}

void MulticoreSystem::swap_threads(std::size_t a, std::size_t b) {
  if (a >= slots_.size() || b >= slots_.size())
    throw std::out_of_range("MulticoreSystem::swap_threads: core index out of "
                            "range (a=" + std::to_string(a) +
                            ", b=" + std::to_string(b) + ", cores=" +
                            std::to_string(slots_.size()) + ")");
  if (a == b) return;
  if (slots_[a].migrating || slots_[b].migrating) return;
  if (slots_[a].thread == nullptr || slots_[b].thread == nullptr) return;

  slots_[a].core->detach();
  slots_[b].core->detach();
  std::swap(slots_[a].thread, slots_[b].thread);
  slots_[a].thread->count_swap();
  slots_[b].thread->count_swap();
  slots_[a].migrating = true;
  slots_[b].migrating = true;
  ++swaps_;
  AMPS_COUNTER_INC("sim.thread_swaps");
  pending_.push_back({.a = a, .b = b, .resume_at = now_ + swap_overhead_,
                      .idle_start_a = slots_[a].core->energy(),
                      .idle_start_b = slots_[b].core->energy()});
}

void MulticoreSystem::dispatch_thread(std::size_t core, ThreadContext* t,
                                      Cycles delay) {
  if (core >= slots_.size())
    throw std::out_of_range("MulticoreSystem::dispatch_thread: core index " +
                            std::to_string(core) + " out of range");
  Slot& slot = slots_[core];
  if (slot.thread != nullptr || slot.migrating)
    throw std::logic_error("MulticoreSystem::dispatch_thread: core " +
                           std::to_string(core) + " is not empty");
  assert(t != nullptr);
  slot.thread = t;
  if (delay == 0) {
    slot.core->attach(t);
    return;
  }
  slot.migrating = true;
  attaches_.push_back({.core = core,
                       .resume_at = now_ + delay,
                       .idle_start = slot.core->energy()});
}

void MulticoreSystem::undispatch_thread(std::size_t core) {
  if (core >= slots_.size())
    throw std::out_of_range("MulticoreSystem::undispatch_thread: core index " +
                            std::to_string(core) + " out of range");
  Slot& slot = slots_[core];
  if (slot.thread == nullptr || slot.migrating)
    throw std::logic_error("MulticoreSystem::undispatch_thread: core " +
                           std::to_string(core) + " has no attached thread");
  slot.core->detach();
  slot.thread = nullptr;
}

void MulticoreSystem::step() {
  // Complete due migrations before ticking.
  for (std::size_t p = 0; p < pending_.size();) {
    PendingSwap& ps = pending_[p];
    if (now_ >= ps.resume_at) {
      // Attribute each core's own idle (leakage) energy to the thread
      // resuming on it: on an asymmetric pair the INT and FP cores burn
      // different idle power, so a 50/50 split would overcharge the thread
      // landing on the frugal core.
      slots_[ps.a].thread->add_energy(slots_[ps.a].core->energy() -
                                      ps.idle_start_a);
      slots_[ps.b].thread->add_energy(slots_[ps.b].core->energy() -
                                      ps.idle_start_b);
      slots_[ps.a].core->attach(slots_[ps.a].thread);
      slots_[ps.b].core->attach(slots_[ps.b].thread);
      slots_[ps.a].migrating = false;
      slots_[ps.b].migrating = false;
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(p));
    } else {
      ++p;
    }
  }
  // Complete due delayed dispatches (open-system handoffs).
  for (std::size_t p = 0; p < attaches_.size();) {
    PendingAttach& pa = attaches_[p];
    if (now_ >= pa.resume_at) {
      Slot& slot = slots_[pa.core];
      slot.thread->add_energy(slot.core->energy() - pa.idle_start);
      slot.core->attach(slot.thread);
      slot.migrating = false;
      attaches_.erase(attaches_.begin() + static_cast<std::ptrdiff_t>(p));
    } else {
      ++p;
    }
  }
  for (Slot& slot : slots_) slot.core->tick(now_);
  ++now_;
}

Cycles MulticoreSystem::idle_fast_forward(Cycles limit) {
  Cycles h = std::min(limit, next_resume_at());
  if (h <= now_) return 0;
  for (const Slot& slot : slots_) {
    if (slot.core->thread() == nullptr) continue;  // detached: leakage only
    h = std::min(h, slot.core->quiet_horizon());
    if (h <= now_) return 0;
  }
  const Cycles jump = h - now_;
  for (Slot& slot : slots_) {
    if (slot.core->thread() == nullptr)
      slot.core->run_idle(jump);
    else
      slot.core->run_quiet(now_, jump);
  }
  now_ += jump;
  AMPS_COUNTER_ADD("sim.idle_ff_cycles", jump);
  return jump;
}

Cycles MulticoreSystem::step_until(Cycles until_cycle,
                                   InstrCount commit_budget) {
  const Cycles start = now_;
  step_until_base_.resize(slots_.size());
  // Slot -> thread assignment is stable within a batch (swaps are only
  // requested by scheduler ticks, which happen between batches; pending
  // migrations completing mid-batch re-attach but do not reassign).
  for (std::size_t i = 0; i < slots_.size(); ++i)
    step_until_base_[i] =
        slots_[i].thread != nullptr ? slots_[i].thread->committed_total() : 0;
  while (now_ < until_cycle) {
    if (idle_fast_forward(until_cycle) != 0) continue;
    step();
    bool budget_hit = false;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].thread != nullptr &&
          slots_[i].thread->committed_total() - step_until_base_[i] >=
          commit_budget) {
        budget_hit = true;
        break;
      }
    }
    if (budget_hit) break;
  }
  // One relaxed add per *batch* (decision interval), not per cycle.
  AMPS_COUNTER_ADD("sim.multicore_batched_cycles", now_ - start);
  return now_ - start;
}

Cycles MulticoreSystem::next_resume_at() const noexcept {
  Cycles earliest = kNoPendingResume;
  for (const PendingSwap& ps : pending_)
    if (ps.resume_at < earliest) earliest = ps.resume_at;
  for (const PendingAttach& pa : attaches_)
    if (pa.resume_at < earliest) earliest = pa.resume_at;
  return earliest;
}

Energy MulticoreSystem::live_energy(const ThreadContext& t) const {
  Energy e = t.energy();
  for (const Slot& slot : slots_)
    if (slot.core->thread() == &t) e += slot.core->energy_since_attach();
  return e;
}

Energy MulticoreSystem::total_energy() const noexcept {
  Energy acc = 0.0;
  for (const Slot& slot : slots_) acc += slot.core->energy();
  return acc;
}

}  // namespace amps::sim
