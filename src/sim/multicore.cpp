#include "sim/multicore.hpp"

#include <cassert>
#include <stdexcept>

namespace amps::sim {

MulticoreSystem::MulticoreSystem(std::vector<CoreConfig> configs,
                                 Cycles swap_overhead)
    : swap_overhead_(swap_overhead) {
  if (configs.size() < 2)
    throw std::invalid_argument("MulticoreSystem: need at least 2 cores");
  slots_.reserve(configs.size());
  for (auto& cfg : configs) {
    Slot slot;
    slot.core = std::make_unique<Core>(cfg);
    slots_.push_back(std::move(slot));
  }
}

void MulticoreSystem::attach_threads(
    const std::vector<ThreadContext*>& threads) {
  if (threads.size() != slots_.size())
    throw std::invalid_argument("MulticoreSystem: thread/core count mismatch");
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    assert(threads[i] != nullptr);
    slots_[i].thread = threads[i];
    slots_[i].core->attach(threads[i]);
  }
}

void MulticoreSystem::swap_threads(std::size_t a, std::size_t b) {
  if (a == b || a >= slots_.size() || b >= slots_.size()) return;
  if (slots_[a].migrating || slots_[b].migrating) return;

  slots_[a].core->detach();
  slots_[b].core->detach();
  std::swap(slots_[a].thread, slots_[b].thread);
  slots_[a].thread->count_swap();
  slots_[b].thread->count_swap();
  slots_[a].migrating = true;
  slots_[b].migrating = true;
  ++swaps_;
  pending_.push_back({.a = a, .b = b, .resume_at = now_ + swap_overhead_,
                      .idle_energy_start = slots_[a].core->energy() +
                                           slots_[b].core->energy()});
}

void MulticoreSystem::step() {
  // Complete due migrations before ticking.
  for (std::size_t p = 0; p < pending_.size();) {
    PendingSwap& ps = pending_[p];
    if (now_ >= ps.resume_at) {
      const Energy idle = slots_[ps.a].core->energy() +
                          slots_[ps.b].core->energy() - ps.idle_energy_start;
      slots_[ps.a].thread->add_energy(idle * 0.5);
      slots_[ps.b].thread->add_energy(idle * 0.5);
      slots_[ps.a].core->attach(slots_[ps.a].thread);
      slots_[ps.b].core->attach(slots_[ps.b].thread);
      slots_[ps.a].migrating = false;
      slots_[ps.b].migrating = false;
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(p));
    } else {
      ++p;
    }
  }
  for (Slot& slot : slots_) slot.core->tick(now_);
  ++now_;
}

Energy MulticoreSystem::live_energy(const ThreadContext& t) const {
  Energy e = t.energy();
  for (const Slot& slot : slots_)
    if (slot.core->thread() == &t) e += slot.core->energy_since_attach();
  return e;
}

Energy MulticoreSystem::total_energy() const noexcept {
  Energy acc = 0.0;
  for (const Slot& slot : slots_) acc += slot.core->energy();
  return acc;
}

}  // namespace amps::sim
