// Thread lifecycle events for open-system scheduling. Mirrors the hook
// shape of Sniper's SchedulerDynamic (threadStart / threadStall /
// threadResume / threadExit): the OpenSystem fires these as jobs arrive,
// block on modeled I/O, become runnable again, and finish, and both
// schedulers and observers (tests, metrics) subscribe through the same
// listener interface.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace amps::sim {

/// Where a thread sits in the open-system lifecycle.
enum class ThreadState : std::uint8_t {
  kPending,  ///< not yet arrived
  kQueued,   ///< runnable, waiting in a core's run queue
  kRunning,  ///< dispatched to a core (attached, or attaching after a delay)
  kBlocked,  ///< stalled on modeled I/O
  kExited,   ///< job complete — terminal
};

const char* to_string(ThreadState state) noexcept;

/// Why a running thread stalled off its core.
enum class StallReason : std::uint8_t {
  kIo,  ///< modeled I/O blocking (wl::IoProfile)
};

const char* to_string(StallReason reason) noexcept;

/// Observer of thread lifecycle events. All hooks default to no-ops so
/// listeners (and schedulers) override only what they react to — the
/// Sniper SchedulerDynamic shape.
class ThreadLifecycleListener {
 public:
  virtual ~ThreadLifecycleListener() = default;

  /// First dispatch of an arrived thread onto core `core`.
  virtual void thread_start(ThreadId /*thread*/, Cycles /*now*/,
                            std::size_t /*core*/) {}
  /// Thread left its core to block (modeled I/O).
  virtual void thread_stall(ThreadId /*thread*/, StallReason /*reason*/,
                            Cycles /*now*/) {}
  /// Blocked thread became runnable again (re-enqueued, not yet running).
  virtual void thread_resume(ThreadId /*thread*/, Cycles /*now*/) {}
  /// Thread committed its full job length; terminal.
  virtual void thread_exit(ThreadId /*thread*/, Cycles /*now*/) {}
};

}  // namespace amps::sim
