#include "sim/lanes.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/stats.hpp"
#include "workload/trace_store.hpp"

namespace amps::sim {

// ---------------------------------------------------------------- LaneEngine

LaneEngine::LaneEngine(std::size_t lanes, NextRun next, Retire retire)
    : lanes_(std::max<std::size_t>(lanes, 1)),
      next_(std::move(next)),
      retire_(std::move(retire)) {
  slots_.resize(lanes_);
  stats_.lanes = lanes_;
}

void LaneEngine::fill_slot(std::size_t slot) {
  while (slots_[slot] == nullptr) {
    std::unique_ptr<LaneRun> run = next_();
    if (run == nullptr) return;  // queue dry; lane stays empty
    if (run->done()) {
      // Zero-work run (e.g. cancel token already expired): retire without
      // ever occupying the lane, exactly as the scalar loop would skip it.
      ++stats_.retired;
      retire_(std::move(run));
      continue;
    }
    slots_[slot] = std::move(run);
  }
}

LaneStats LaneEngine::run() {
  for (std::size_t i = 0; i < lanes_; ++i) {
    const std::size_t before = stats_.retired;
    fill_slot(i);
    if (slots_[i] != nullptr || stats_.retired > before) ++stats_.fills;
  }

  bool any_live = std::any_of(slots_.begin(), slots_.end(),
                              [](const auto& s) { return s != nullptr; });
  while (any_live) {
    ++stats_.sweeps;
    any_live = false;
    for (std::size_t i = 0; i < lanes_; ++i) {
      if (slots_[i] == nullptr) {
        ++stats_.idle_slices;
        continue;
      }
      ++stats_.occupied_slices;
      slots_[i]->advance();
      if (slots_[i]->done()) {
        ++stats_.retired;
        retire_(std::move(slots_[i]));
        slots_[i] = nullptr;
        const std::size_t before = stats_.retired;
        fill_slot(i);
        if (slots_[i] != nullptr || stats_.retired > before)
          ++stats_.refills;
      }
      if (slots_[i] != nullptr) any_live = true;
    }
  }

  AMPS_COUNTER_ADD("lanes.fills", stats_.fills);
  AMPS_COUNTER_ADD("lanes.refills", stats_.refills);
  AMPS_COUNTER_ADD("lanes.sweeps", stats_.sweeps);
  AMPS_COUNTER_ADD("lanes.idle_slices", stats_.idle_slices);
  return stats_;
}

// -------------------------------------------------------------- SharedStream

SharedStream::SharedStream(std::unique_ptr<wl::OpSource> source)
    : source_(std::move(source)) {}

void SharedStream::attach(SharedStreamSource* reader) {
  readers_.push_back(reader);
}

void SharedStream::detach(SharedStreamSource* reader) noexcept {
  readers_.erase(std::remove(readers_.begin(), readers_.end(), reader),
                 readers_.end());
}

void SharedStream::ensure_through(std::uint64_t end) {
  while (base_ + buffer_.size() < end) {
    const std::size_t old = buffer_.size();
    buffer_.resize(old + wl::kTraceChunkOps);
    source_->next_batch(buffer_.data() + old, wl::kTraceChunkOps);
  }
}

void SharedStream::prune_front() {
  if (readers_.empty()) return;
  std::uint64_t min_pos = readers_.front()->pos_;
  for (const SharedStreamSource* r : readers_)
    min_pos = std::min(min_pos, r->pos_);
  // Drop fully consumed whole chunks; keep partial chunks so replays of a
  // straggling reader never re-decode.
  const std::uint64_t keep_from =
      (min_pos / wl::kTraceChunkOps) * wl::kTraceChunkOps;
  if (keep_from <= base_) return;
  const std::size_t drop = static_cast<std::size_t>(keep_from - base_);
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(drop));
  base_ = keep_from;
}

void SharedStream::read(SharedStreamSource& reader, isa::MicroOp* out,
                        std::size_t n) {
  ensure_through(reader.pos_ + n);
  const std::size_t off = static_cast<std::size_t>(reader.pos_ - base_);
  std::memcpy(out, buffer_.data() + off, n * sizeof(isa::MicroOp));
  reader.pos_ += n;
  prune_front();
}

// -------------------------------------------------------- SharedStreamSource

SharedStreamSource::SharedStreamSource(std::shared_ptr<SharedStream> stream)
    : stream_(std::move(stream)) {
  stream_->attach(this);
}

SharedStreamSource::~SharedStreamSource() { stream_->detach(this); }

isa::MicroOp SharedStreamSource::next() {
  isa::MicroOp op;
  stream_->read(*this, &op, 1);
  return op;
}

void SharedStreamSource::next_batch(isa::MicroOp* out, std::size_t n) {
  stream_->read(*this, out, n);
}

// --------------------------------------------------------- SharedStreamCache

std::unique_ptr<wl::OpSource> SharedStreamCache::open(
    const wl::BenchmarkSpec& spec, std::uint64_t instance_seed) {
  for (Entry& e : streams_) {
    if (e.spec != &spec || e.instance_seed != instance_seed) continue;
    if (e.stream->base() == 0) {
      // Still holds the sequence from op 0 — a fresh cursor can join.
      AMPS_COUNTER_INC("lanes.stream_shares");
      return std::make_unique<SharedStreamSource>(e.stream);
    }
    // The existing readers pruned the front past op 0 (they raced ahead
    // before this run was refilled into a lane), so a new reader cannot
    // join it. Re-decode from scratch and let later opens share that.
    e.stream = std::make_shared<SharedStream>(
        wl::make_op_source(spec, instance_seed));
    return std::make_unique<SharedStreamSource>(e.stream);
  }
  auto stream = std::make_shared<SharedStream>(
      wl::make_op_source(spec, instance_seed));
  streams_.push_back(Entry{&spec, instance_seed, stream});
  return std::make_unique<SharedStreamSource>(std::move(stream));
}

}  // namespace amps::sim
