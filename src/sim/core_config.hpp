// Core configurations for the paper's heterogeneous dual-core (Tables I and
// II): an INT core with a strong pipelined integer datapath and weak
// non-pipelined FP units, and an FP core with the opposite arrangement.
//
// Where the scanned paper lost digits, values are filled with the obvious
// intent (weak units are single, non-pipelined and slower than their strong
// twins; see DESIGN.md "Fidelity notes").
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "power/energy_model.hpp"
#include "uarch/branch_predictor.hpp"
#include "uarch/cache.hpp"
#include "uarch/func_unit.hpp"

namespace amps::sim {

struct CoreConfig {
  std::string name;
  CoreKind kind = CoreKind::Int;

  // Pipeline widths.
  std::uint32_t fetch_width = 4;
  std::uint32_t commit_width = 4;
  std::uint32_t issue_width = 6;  ///< total select bandwidth per cycle

  // Window / rename structures (paper Table I).
  std::uint32_t rob_entries = 96;
  std::uint32_t int_rename_regs = 64;
  std::uint32_t fp_rename_regs = 64;
  std::uint32_t int_isq_entries = 24;
  std::uint32_t fp_isq_entries = 24;
  std::uint32_t lq_entries = 16;  ///< load-queue half of the LSQ
  std::uint32_t sq_entries = 16;  ///< store-queue half

  // Memory system (paper Table I: 4K IL1/DL1, 128K L2).
  uarch::CacheConfig il1{.size_bytes = 4 * 1024, .line_bytes = 64, .associativity = 2};
  uarch::CacheConfig dl1{.size_bytes = 4 * 1024, .line_bytes = 64, .associativity = 2};
  uarch::CacheConfig l2{.size_bytes = 128 * 1024, .line_bytes = 64, .associativity = 8};
  uarch::MemoryLatencies mem_lat;
  /// Optional next-line data prefetcher (off in the paper's configuration;
  /// the prefetch ablation bench flips it).
  bool prefetch_next_line = false;
  /// Power-model coefficients. Morphed configurations carry a leakage
  /// penalty here for the reconfiguration hardware (paper §III: morphing
  /// "requires special hardware").
  power::EnergyParams energy_params;

  /// DVFS operating point: the core runs at 1/clock_divider of the
  /// reference frequency (pipeline advances only every clock_divider-th
  /// global cycle) at a proportionally lower voltage. This is the "runs at
  /// a lower frequency" core asymmetry of the original HPE work (§V).
  std::uint32_t clock_divider = 1;

  uarch::BranchPredictorConfig bpred;
  Cycles mispredict_penalty = 6;

  // Execution units (paper Table II).
  uarch::ExecUnits::Config exec;

  /// Selects the structure-of-arrays fast pipeline engine (the default) or
  /// the reference one-entry-at-a-time implementation. The two produce
  /// bit-identical architected results — committed counts, IPC, miss
  /// rates, energy, swap decisions — so this is purely a speed/escape
  /// hatch, set from AMPS_FAST_CORE (AMPS_FAST_CORE=0 disables) and
  /// deliberately excluded from run-cache keys.
  bool fast_engine = fast_engine_default();

  /// The process-wide default for `fast_engine`: AMPS_FAST_CORE != 0.
  static bool fast_engine_default();

  /// Plain-number view consumed by the power model.
  [[nodiscard]] power::StructureSizes structure_sizes() const noexcept;

  /// Sanity checks (widths > 0, caches valid...).
  [[nodiscard]] bool validate(std::string* why = nullptr) const;
};

/// The strong-integer / weak-FP core ("core B" in paper Fig. 1).
CoreConfig int_core_config();

/// The strong-FP / weak-integer core ("core A" in paper Fig. 1).
CoreConfig fp_core_config();

/// A symmetric middle-ground core used by tests and ablations (both
/// datapaths at strong settings; bigger, leakier).
CoreConfig symmetric_core_config();

/// Morphed-mode pair (paper ref. [5], the authors' prior core-morphing
/// work this paper deliberately avoids): the INT core borrows the FP
/// core's strong floating-point datapath, becoming strong on all fronts;
/// the FP core is left weak on all fronts. Both carry a leakage premium
/// for the morphing muxes/crossbar. Cache geometry is unchanged, so a core
/// can be reconfigured in place.
CoreConfig morphed_strong_core_config();
CoreConfig morphed_weak_core_config();

/// Frequency-asymmetric pair (the original HPE work's other asymmetry
/// style, §V: one core "runs at a higher frequency, while the other ...
/// runs at a lower frequency"): microarchitecturally identical cores, one
/// at the reference clock and one at half clock / reduced voltage.
CoreConfig fast_core_config();
CoreConfig slow_core_config();

/// Big/little pair (paper §VIII: "The methodology described here for an
/// INT and FP cores can be followed for other types of asymmetric cores").
/// The big core is wide with strong units on both sides; the little core is
/// narrow with a small window — the HPE paper's original asymmetry style.
CoreConfig big_core_config();
CoreConfig little_core_config();

}  // namespace amps::sim
