// Cycle-level out-of-order core model (SESC-style substitute).
//
// Pipeline per cycle: commit (in order, from the ROB head) -> issue
// (oldest-first from the INT/FP issue queues and the load/store queues,
// gated by operand readiness and functional-unit availability) -> fetch/
// rename/dispatch (stalls on I-cache misses, branch-mispredict redirects
// and structural hazards: ROB, rename registers, ISQ, LSQ).
//
// Simplifications relative to a full simulator, none of which affect the
// asymmetry the paper studies: no wrong-path execution (the front end
// stalls from a mispredicted branch's dispatch until it resolves), no
// memory disambiguation (loads never conflict with older stores), and
// stores write the cache at commit.
#pragma once

#include <deque>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "power/accountant.hpp"
#include "power/energy_model.hpp"
#include "sim/core_config.hpp"
#include "sim/thread_context.hpp"
#include "uarch/branch_predictor.hpp"
#include "uarch/cache.hpp"
#include "uarch/func_unit.hpp"
#include "uarch/structures.hpp"

namespace amps::sim {

/// Cycles lost per stall reason (diagnostics; a cycle may record several).
struct StallStats {
  std::uint64_t rob_full = 0;
  std::uint64_t int_reg = 0;
  std::uint64_t fp_reg = 0;
  std::uint64_t int_isq_full = 0;
  std::uint64_t fp_isq_full = 0;
  std::uint64_t lsq_full = 0;
  std::uint64_t icache = 0;
  std::uint64_t redirect = 0;
};

class Core {
 public:
  explicit Core(const CoreConfig& cfg);

  /// Core whose L2 traffic goes to a shared array (must outlive the core).
  /// Models the shared-cache organization the paper's §VI-C overhead
  /// discussion contrasts with private caches.
  Core(const CoreConfig& cfg, uarch::SharedL2* shared_l2);

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  /// Binds a thread to the core. The pipeline must be empty (fresh core or
  /// after detach). Caches and predictor state persist across attachments —
  /// that is the post-swap warm-up cost the paper's overhead discussion
  /// includes.
  void attach(ThreadContext* thread);

  /// Flushes the pipeline, returns squashed uncommitted ops to the thread
  /// for replay, settles the thread's energy account, and unbinds it.
  /// Returns the detached thread (nullptr when idle).
  ThreadContext* detach();

  [[nodiscard]] ThreadContext* thread() const noexcept { return thread_; }

  /// Advances one clock cycle at global time `now` (monotonic). An idle
  /// core only burns leakage.
  void tick(Cycles now);

  /// Core morphing (paper ref. [5]): rebuilds the execution datapath and
  /// window structures to `cfg` while keeping caches, predictor state and
  /// the accumulated energy ledger. Only legal while no thread is attached
  /// (the pipeline must be empty); throws std::logic_error otherwise.
  void reconfigure(const CoreConfig& cfg);

  // --- introspection ------------------------------------------------------
  [[nodiscard]] const CoreConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const power::PowerAccountant& power() const noexcept {
    return power_;
  }
  [[nodiscard]] Energy energy() const noexcept { return power_.total(); }
  /// Energy burned since the current thread was attached.
  [[nodiscard]] Energy energy_since_attach() const noexcept {
    return power_.total() - attach_energy_;
  }
  /// L2 misses since the current thread was attached (all attributable to
  /// it: the core runs one thread at a time, and with a shared L2 only
  /// this core's own demand misses are counted).
  [[nodiscard]] std::uint64_t l2_misses_since_attach() const noexcept {
    return caches_.l2_demand_misses() - attach_l2_misses_;
  }
  [[nodiscard]] const uarch::CacheHierarchy& caches() const noexcept {
    return caches_;
  }
  [[nodiscard]] const uarch::BranchPredictor& bpred() const noexcept {
    return bpred_;
  }
  [[nodiscard]] const uarch::ExecUnits& exec_units() const noexcept {
    return exec_;
  }
  [[nodiscard]] const StallStats& stalls() const noexcept { return stalls_; }
  [[nodiscard]] std::uint64_t committed_ops() const noexcept {
    return committed_ops_;
  }
  /// Number of ops currently in flight (ROB occupancy).
  [[nodiscard]] std::size_t in_flight() const noexcept { return rob_count_; }

  [[nodiscard]] const uarch::ResourcePool& int_regs() const noexcept {
    return int_regs_;
  }
  [[nodiscard]] const uarch::ResourcePool& fp_regs() const noexcept {
    return fp_regs_;
  }

 private:
  /// Delegated constructor taking a config whose latencies are already
  /// stretched to the global clock.
  Core(const CoreConfig& cfg, bool already_stretched,
       uarch::SharedL2* shared_l2);

  struct RobEntry {
    isa::MicroOp op;
    std::uint64_t seq = 0;       // thread-relative dynamic sequence number
    Cycles complete_at = 0;      // valid when issued
    bool issued = false;
  };

  /// One fast-engine wait queue (INT/FP issue queue, LQ or SQ). Waiting
  /// ops are never scanned: an op with unissued producers sits outside
  /// both lists until the waiter chains (f_waiters_) deliver its last
  /// producer's completion; an op whose wake time is known waits in
  /// `timed` (a min-heap on that time) and moves to `ready` when due.
  /// `ready` is kept oldest-first, so selection walks exactly the ops the
  /// reference engine's full scan would have found ready, in the same
  /// order.
  struct FastQueue {
    std::vector<std::uint32_t> ready;  ///< ring slots, oldest first
    std::vector<std::pair<Cycles, std::uint32_t>> timed;  ///< min-heap
  };

  // Reference (escape-hatch) engine: one-entry-at-a-time, kept verbatim.
  void commit_stage(Cycles now);
  void issue_stage(Cycles now);
  void fetch_stage(Cycles now);

  // Fast engine: SoA ROB + event-driven wakeup. Bit-identical architected
  // behavior (see tests/sim/fast_engine_test.cpp).
  void commit_stage_fast(Cycles now);
  void issue_stage_fast(Cycles now);
  void fetch_stage_fast(Cycles now);
  void maybe_quiesce(Cycles now) noexcept;
  /// Delivers an issued producer's completion time to every op waiting on
  /// ring slot `pidx`; ops whose last producer this was enter their
  /// queue's timed heap.
  void wake_waiters(std::size_t pidx, Cycles done);
  void drain_timed(FastQueue& q, Cycles now);
  void insert_by_age(std::vector<std::uint32_t>& ready, std::uint32_t idx);
  [[nodiscard]] FastQueue& queue_of(isa::InstrClass cls) noexcept;

  [[nodiscard]] bool dep_ready(std::uint64_t seq, std::uint16_t dist,
                               Cycles now) const noexcept;
  [[nodiscard]] bool operands_ready(const RobEntry& e, Cycles now) const noexcept;
  [[nodiscard]] std::size_t rob_index_of(std::uint64_t seq) const noexcept;
  void charge_mem(uarch::MemLevel level) noexcept;

  CoreConfig cfg_;
  uarch::CacheHierarchy caches_;
  uarch::BranchPredictor bpred_;
  uarch::ExecUnits exec_;
  power::EnergyModel energy_model_;
  power::PowerAccountant power_;

  uarch::ResourcePool int_regs_;
  uarch::ResourcePool fp_regs_;
  uarch::ResourcePool int_isq_slots_;
  uarch::ResourcePool fp_isq_slots_;
  uarch::ResourcePool lq_slots_;
  uarch::ResourcePool sq_slots_;

  std::vector<RobEntry> rob_;  // ring buffer, capacity = cfg.rob_entries
  std::size_t rob_head_ = 0;
  std::size_t rob_count_ = 0;
  std::uint64_t head_seq_ = 0;  // seq of the entry at rob_head_ (if any)

  // Indices (into the ROB ring) of dispatched-but-unissued ops (reference
  // engine only).
  std::vector<std::uint32_t> int_isq_;
  std::vector<std::uint32_t> fp_isq_;
  std::vector<std::uint32_t> lq_;
  std::vector<std::uint32_t> sq_;

  // Fast-engine ROB as structure-of-arrays (same ring geometry:
  // rob_head_/rob_count_/head_seq_ are shared). The full op is read at
  // dispatch, load issue, store commit and squash.
  std::vector<isa::MicroOp> f_op_;
  std::vector<Cycles> f_complete_;
  std::vector<std::uint8_t> f_issued_;

  // Event-driven wakeup state, indexed by ROB ring slot. At dispatch each
  // live unissued producer records the new op in its waiter list; when the
  // producer issues, its (final) completion time folds into f_ready_at_
  // and f_wait_count_ drops. A producer cannot retire without issuing
  // first, and a consumer cannot outlive its producers' slots, so waiter
  // lists drain before any slot is reused. The inner vectors keep their
  // capacity across clear(), so steady state allocates nothing.
  std::vector<Cycles> f_ready_at_;          ///< max folded completion
  std::vector<std::uint8_t> f_wait_count_;  ///< unissued producers left
  std::vector<std::vector<std::uint32_t>> f_waiters_;
  FastQueue f_int_q_, f_fp_q_, f_lq_q_, f_sq_q_;
  static constexpr Cycles kNeverWake = ~Cycles{0};
  std::uint32_t redirect_idx_ = 0;  // ring slot of the mispredicted branch

  // Fast-engine quiescence. When a full tick performs no architected work
  // (no commit, no wakeup, fetch blocked), every future effect is gated on
  // an already-latched time: a completion, a cached readiness time, or the
  // front end's resume time. Until the earliest of those, each tick would
  // only repeat the same stall-counter bump — so ticks inside
  // [now+1, quiet_until_) skip the stage walk and bump *quiet_stall_
  // directly, exactly as the reference engine would.
  Cycles quiet_until_ = 0;
  std::uint64_t StallStats::* quiet_stall_ = nullptr;  // move-safe
  bool f_action_ = false;  // set by the fast stages when a tick did work

  Cycles branch_port_free_ = 0;  // single branch-resolution port

  // Front-end state.
  std::uint64_t last_fetch_line_ = ~0ULL;
  Cycles fetch_resume_at_ = 0;
  bool redirect_pending_ = false;
  std::uint64_t redirect_seq_ = 0;

  ThreadContext* thread_ = nullptr;
  Energy attach_energy_ = 0.0;
  std::uint64_t attach_l2_misses_ = 0;
  std::uint64_t committed_ops_ = 0;
  StallStats stalls_;
};

}  // namespace amps::sim
