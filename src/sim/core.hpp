// Cycle-level out-of-order core model (SESC-style substitute).
//
// Pipeline per cycle: commit (in order, from the ROB head) -> issue
// (oldest-first from the INT/FP issue queues and the load/store queues,
// gated by operand readiness and functional-unit availability) -> fetch/
// rename/dispatch (stalls on I-cache misses, branch-mispredict redirects
// and structural hazards: ROB, rename registers, ISQ, LSQ).
//
// Simplifications relative to a full simulator, none of which affect the
// asymmetry the paper studies: no wrong-path execution (the front end
// stalls from a mispredicted branch's dispatch until it resolves), no
// memory disambiguation (loads never conflict with older stores), and
// stores write the cache at commit.
#pragma once

#include <deque>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "power/accountant.hpp"
#include "power/energy_model.hpp"
#include "sim/core_config.hpp"
#include "sim/thread_context.hpp"
#include "uarch/branch_predictor.hpp"
#include "uarch/cache.hpp"
#include "uarch/func_unit.hpp"
#include "uarch/structures.hpp"

namespace amps::sim {

/// Cycles lost per stall reason (diagnostics; a cycle may record several).
struct StallStats {
  std::uint64_t rob_full = 0;
  std::uint64_t int_reg = 0;
  std::uint64_t fp_reg = 0;
  std::uint64_t int_isq_full = 0;
  std::uint64_t fp_isq_full = 0;
  std::uint64_t lsq_full = 0;
  std::uint64_t icache = 0;
  std::uint64_t redirect = 0;
};

class Core {
 public:
  explicit Core(const CoreConfig& cfg);

  /// Core whose L2 traffic goes to a shared array (must outlive the core).
  /// Models the shared-cache organization the paper's §VI-C overhead
  /// discussion contrasts with private caches.
  Core(const CoreConfig& cfg, uarch::SharedL2* shared_l2);

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  /// Binds a thread to the core. The pipeline must be empty (fresh core or
  /// after detach). Caches and predictor state persist across attachments —
  /// that is the post-swap warm-up cost the paper's overhead discussion
  /// includes.
  void attach(ThreadContext* thread);

  /// Flushes the pipeline, returns squashed uncommitted ops to the thread
  /// for replay, settles the thread's energy account, and unbinds it.
  /// Returns the detached thread (nullptr when idle).
  ThreadContext* detach();

  [[nodiscard]] ThreadContext* thread() const noexcept { return thread_; }

  /// Advances one clock cycle at global time `now` (monotonic). An idle
  /// core only burns leakage.
  void tick(Cycles now);

  /// Exclusive end of the provably-idle window maybe_quiesce latched: every
  /// tick at a cycle below the horizon takes the quiet path. 0 when the
  /// core is not quiescent (reference engine, idle core, or active work).
  /// Systems use this to fast-forward whole quiet spans in O(1).
  [[nodiscard]] Cycles quiet_horizon() const noexcept {
    return (cfg_.fast_engine && thread_ != nullptr) ? quiet_until_ : 0;
  }

  /// Replays `n` consecutive quiet ticks starting at cycle `now` in O(1) —
  /// bit-identical to calling tick(now) .. tick(now+n-1). Caller must
  /// guarantee now + n <= quiet_horizon().
  void run_quiet(Cycles now, Cycles n) noexcept;

  /// Replays `n` idle (no thread attached) ticks in O(1): leakage only,
  /// exactly like n tick() calls on a detached core.
  void run_idle(Cycles n) noexcept { power_.on_cycles(n); }

  /// Core morphing (paper ref. [5]): rebuilds the execution datapath and
  /// window structures to `cfg` while keeping caches, predictor state and
  /// the accumulated energy ledger. Only legal while no thread is attached
  /// (the pipeline must be empty); throws std::logic_error otherwise.
  void reconfigure(const CoreConfig& cfg);

  // --- introspection ------------------------------------------------------
  [[nodiscard]] const CoreConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const power::PowerAccountant& power() const noexcept {
    return power_;
  }
  [[nodiscard]] Energy energy() const noexcept { return power_.total(); }
  /// Energy burned since the current thread was attached.
  [[nodiscard]] Energy energy_since_attach() const noexcept {
    return power_.total() - attach_energy_;
  }
  /// L2 misses since the current thread was attached (all attributable to
  /// it: the core runs one thread at a time, and with a shared L2 only
  /// this core's own demand misses are counted).
  [[nodiscard]] std::uint64_t l2_misses_since_attach() const noexcept {
    return caches_.l2_demand_misses() - attach_l2_misses_;
  }
  [[nodiscard]] const uarch::CacheHierarchy& caches() const noexcept {
    return caches_;
  }
  [[nodiscard]] const uarch::BranchPredictor& bpred() const noexcept {
    return bpred_;
  }
  [[nodiscard]] const uarch::ExecUnits& exec_units() const noexcept {
    return exec_;
  }
  [[nodiscard]] const StallStats& stalls() const noexcept { return stalls_; }
  [[nodiscard]] std::uint64_t committed_ops() const noexcept {
    return committed_ops_;
  }
  /// Number of ops currently in flight (ROB occupancy).
  [[nodiscard]] std::size_t in_flight() const noexcept { return rob_count_; }

  [[nodiscard]] const uarch::ResourcePool& int_regs() const noexcept {
    return int_regs_;
  }
  [[nodiscard]] const uarch::ResourcePool& fp_regs() const noexcept {
    return fp_regs_;
  }

 private:
  /// Delegated constructor taking a config whose latencies are already
  /// stretched to the global clock.
  Core(const CoreConfig& cfg, bool already_stretched,
       uarch::SharedL2* shared_l2);

  struct RobEntry {
    isa::MicroOp op;
    std::uint64_t seq = 0;       // thread-relative dynamic sequence number
    Cycles complete_at = 0;      // valid when issued
    bool issued = false;
  };

  /// One fast-engine wait queue (INT/FP issue queue, LQ or SQ). Waiting
  /// ops are never scanned: an op with unissued producers sits outside the
  /// ready list until the waiter chains (f_waiter_head_) deliver its last
  /// producer's completion; an op whose wake time is known parks in the
  /// core's timing wheel and moves to `ready` when due. `ready` is kept
  /// oldest-first, so selection walks exactly the ops the reference
  /// engine's full scan would have found ready, in the same order.
  struct FastQueue {
    std::vector<std::uint32_t> ready;  ///< ring slots, oldest first
  };

  // Reference (escape-hatch) engine: one-entry-at-a-time, kept verbatim.
  void commit_stage(Cycles now);
  void issue_stage(Cycles now);
  void fetch_stage(Cycles now);

  // Fast engine: SoA ROB + event-driven wakeup. Bit-identical architected
  // behavior (see tests/sim/fast_engine_test.cpp).
  void commit_stage_fast(Cycles now);
  void issue_stage_fast(Cycles now);
  void fetch_stage_fast(Cycles now);
  void maybe_quiesce(Cycles now) noexcept;
  /// Delivers an issued producer's completion time to every op waiting on
  /// ring slot `pidx`; ops whose last producer this was park in the
  /// timing wheel until their wake time.
  void wake_waiters(std::size_t pidx, Cycles done);
  /// Parks ring slot `idx` in the timing wheel to wake at cycle `t`
  /// (strictly in the future of the last wheel_drain).
  void wheel_push(Cycles t, std::uint32_t idx);
  /// Moves every parked op whose wake time has arrived into its queue's
  /// age-ordered ready list. Must run once per pipeline tick, before the
  /// issue stage.
  void wheel_drain(Cycles now);
  void wheel_clear() noexcept;
  void insert_by_age(std::vector<std::uint32_t>& ready, std::uint32_t idx);
  [[nodiscard]] FastQueue& queue_of(isa::InstrClass cls) noexcept;

  [[nodiscard]] bool dep_ready(std::uint64_t seq, std::uint16_t dist,
                               Cycles now) const noexcept;
  [[nodiscard]] bool operands_ready(const RobEntry& e, Cycles now) const noexcept;
  [[nodiscard]] std::size_t rob_index_of(std::uint64_t seq) const noexcept;
  void charge_mem(uarch::MemLevel level) noexcept;

  CoreConfig cfg_;
  uarch::CacheHierarchy caches_;
  uarch::BranchPredictor bpred_;
  uarch::ExecUnits exec_;
  power::EnergyModel energy_model_;
  power::PowerAccountant power_;

  uarch::ResourcePool int_regs_;
  uarch::ResourcePool fp_regs_;
  uarch::ResourcePool int_isq_slots_;
  uarch::ResourcePool fp_isq_slots_;
  uarch::ResourcePool lq_slots_;
  uarch::ResourcePool sq_slots_;

  std::vector<RobEntry> rob_;  // ring buffer, capacity = cfg.rob_entries
  std::size_t rob_head_ = 0;
  std::size_t rob_count_ = 0;
  std::uint64_t head_seq_ = 0;  // seq of the entry at rob_head_ (if any)

  // Indices (into the ROB ring) of dispatched-but-unissued ops (reference
  // engine only).
  std::vector<std::uint32_t> int_isq_;
  std::vector<std::uint32_t> fp_isq_;
  std::vector<std::uint32_t> lq_;
  std::vector<std::uint32_t> sq_;

  // Fast-engine ROB as structure-of-arrays (same ring geometry:
  // rob_head_/rob_count_/head_seq_ are shared). The full op is read at
  // dispatch, load issue, store commit and squash.
  std::vector<isa::MicroOp> f_op_;
  std::vector<std::uint8_t> f_cls_;  ///< f_op_[i].cls, packed for hot loops
  /// Completion cycle once issued; kNeverWake while the op sits unissued
  /// (so commit's head test is a single compare, no separate issued flag).
  std::vector<Cycles> f_complete_;

  // Event-driven wakeup state, indexed by ROB ring slot. At dispatch each
  // live unissued producer records the new op in its waiter chain; when the
  // producer issues, its (final) completion time folds into f_ready_at_
  // and f_wait_count_ drops. A producer cannot retire without issuing
  // first, and a consumer cannot outlive its producers' slots, so waiter
  // chains drain before any slot is reused.
  //
  // Chains are flat and intrusive: a consumer waits on at most two
  // producers (dep1/dep2), so one link per (consumer, dep slot) threads
  // every chain with zero heap traffic. Entries pack the consumer slot
  // with the dep-slot bit (kWaiterDepBit); chain order is reverse dispatch
  // order, which is invisible — f_ready_at_ folds via max and the timing
  // wheel re-sorts ready ops by age.
  static constexpr std::uint32_t kWaiterNil = 0xFFFFFFFFu;
  static constexpr std::uint32_t kWaiterDepBit = 31;
  std::vector<Cycles> f_ready_at_;          ///< max folded completion
  std::vector<std::uint8_t> f_wait_count_;  ///< unissued producers left
  std::vector<std::uint32_t> f_waiter_head_;     ///< per producer slot
  std::vector<std::uint32_t> f_waiter_link_[2];  ///< per consumer, per dep
  FastQueue f_int_q_, f_fp_q_, f_lq_q_, f_sq_q_;
  static constexpr Cycles kNeverWake = ~Cycles{0};
  std::uint32_t redirect_idx_ = 0;  // ring slot of the mispredicted branch

  // Timing wheel: O(1) park/wake replacing per-queue binary heaps. One
  // bucket per future cycle (mod kWheelSlots); each bucket is an intrusive
  // singly-linked list threaded through wheel_next_ (a ROB slot waits on at
  // most one wake time, so one link per slot suffices). All wake times lie
  // within the pipeline's maximum latency (a DRAM access plus small
  // constants, well under kWheelSlots); the rare farther entry — possible
  // only through pathological config values — parks in wheel_far_.
  static constexpr std::size_t kWheelSlots = 2048;  // > max wake distance
  static constexpr std::uint32_t kWheelNil = 0xFFFFFFFFu;
  std::vector<std::uint32_t> wheel_head_;  ///< kWheelSlots buckets
  std::vector<std::uint32_t> wheel_next_;  ///< per-ROB-slot bucket link
  std::vector<std::pair<Cycles, std::uint32_t>> wheel_far_;
  std::size_t wheel_pending_ = 0;  ///< entries parked in buckets
  Cycles wheel_cursor_ = 0;        ///< buckets drained through this cycle

  // Fast-engine quiescence. When a full tick performs no architected work
  // (no commit, no wakeup, fetch blocked), every future effect is gated on
  // an already-latched time: a completion, a cached readiness time, or the
  // front end's resume time. Until the earliest of those, each tick would
  // only repeat the same stall-counter bump — so ticks inside
  // [now+1, quiet_until_) skip the stage walk and bump *quiet_stall_
  // directly, exactly as the reference engine would.
  Cycles quiet_until_ = 0;
  std::uint64_t StallStats::* quiet_stall_ = nullptr;  // move-safe
  bool f_action_ = false;  // set by the fast stages when a tick did work

  Cycles branch_port_free_ = 0;  // single branch-resolution port

  // Front-end state.
  std::uint64_t last_fetch_line_ = ~0ULL;
  Cycles fetch_resume_at_ = 0;
  bool redirect_pending_ = false;
  std::uint64_t redirect_seq_ = 0;

  ThreadContext* thread_ = nullptr;
  Energy attach_energy_ = 0.0;
  std::uint64_t attach_l2_misses_ = 0;
  std::uint64_t committed_ops_ = 0;
  StallStats stalls_;
};

}  // namespace amps::sim
