// Solo runs: one benchmark alone on one core. Used by the offline
// profiling passes (HPE matrix/regression, paper §V; swap-rule derivation,
// §VI-A) and by the Fig. 1 core-affinity experiment.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/core_config.hpp"
#include "workload/benchmark.hpp"

namespace amps::sim {

/// One fixed-cycle-interval sample of a solo run.
struct SoloSample {
  double int_pct = 0.0;  ///< %INT of instructions committed in the interval
  double fp_pct = 0.0;   ///< %FP committed in the interval
  double ipc = 0.0;
  double ipc_per_watt = 0.0;
  InstrCount committed = 0;  ///< instructions committed in the interval
};

/// Aggregate outcome of a solo run.
struct SoloResult {
  std::vector<SoloSample> samples;
  InstrCount committed = 0;
  Cycles cycles = 0;
  Energy energy = 0.0;
  std::uint64_t l2_misses = 0;

  /// L2 misses per kilo-instruction over the whole run.
  [[nodiscard]] double l2_mpki() const noexcept {
    return committed ? 1000.0 * static_cast<double>(l2_misses) /
                           static_cast<double>(committed)
                     : 0.0;
  }

  [[nodiscard]] double ipc() const noexcept {
    return cycles ? static_cast<double>(committed) / static_cast<double>(cycles)
                  : 0.0;
  }
  [[nodiscard]] double ipc_per_watt() const noexcept {
    return energy > 0.0 ? static_cast<double>(committed) / energy : 0.0;
  }
};

/// Runs `spec` alone on a core built from `cfg` until `run_length`
/// instructions commit (bounded at 40x that in cycles), sampling every
/// `sample_interval` cycles (0 = no samples).
SoloResult run_solo(const CoreConfig& cfg, const wl::BenchmarkSpec& spec,
                    InstrCount run_length, Cycles sample_interval = 0,
                    std::uint64_t instance_seed = 0);

}  // namespace amps::sim
