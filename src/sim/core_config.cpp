#include "sim/core_config.hpp"

#include "common/env.hpp"

namespace amps::sim {

bool CoreConfig::fast_engine_default() {
  // Latched once: mid-run flips would let two Cores built from the same
  // config disagree, which the equivalence tests control explicitly.
  static const bool enabled = env_int("AMPS_FAST_CORE", 1) != 0;
  return enabled;
}

power::StructureSizes CoreConfig::structure_sizes() const noexcept {
  power::StructureSizes s;
  s.rob = rob_entries;
  s.int_regs = int_rename_regs;
  s.fp_regs = fp_rename_regs;
  s.int_isq = int_isq_entries;
  s.fp_isq = fp_isq_entries;
  s.lsq = lq_entries + sq_entries;
  s.il1_bytes = il1.size_bytes;
  s.dl1_bytes = dl1.size_bytes;
  s.l2_bytes = l2.size_bytes;
  s.exec = exec;
  return s;
}

bool CoreConfig::validate(std::string* why) const {
  auto fail = [&](const char* reason) {
    if (why != nullptr) *why = name + ": " + reason;
    return false;
  };
  if (fetch_width == 0 || commit_width == 0 || issue_width == 0)
    return fail("widths must be > 0");
  if (rob_entries == 0) return fail("rob_entries must be > 0");
  if (int_rename_regs == 0 || fp_rename_regs == 0)
    return fail("rename registers must be > 0");
  if (int_isq_entries == 0 || fp_isq_entries == 0)
    return fail("issue queues must be > 0");
  if (lq_entries == 0 || sq_entries == 0) return fail("LSQ must be > 0");
  if (clock_divider == 0) return fail("clock_divider must be >= 1");
  if (!il1.valid() || !dl1.valid() || !l2.valid())
    return fail("invalid cache geometry");
  return true;
}

CoreConfig int_core_config() {
  CoreConfig c;
  c.name = "INT-core";
  c.kind = CoreKind::Int;
  // Strong integer window (Table I: INT core has the larger INTREG/INTISQ).
  c.int_rename_regs = 96;
  c.fp_rename_regs = 48;
  c.int_isq_entries = 32;
  c.fp_isq_entries = 16;
  // Table II, INT row: pipelined integer datapath, two 1-cycle ALUs;
  // weak non-pipelined FP units.
  c.exec.int_alu = {.units = 2, .latency = 1, .pipelined = true};
  c.exec.int_mul = {.units = 1, .latency = 3, .pipelined = true};
  c.exec.int_div = {.units = 1, .latency = 12, .pipelined = true};
  c.exec.fp_alu = {.units = 1, .latency = 8, .pipelined = false};
  c.exec.fp_mul = {.units = 1, .latency = 10, .pipelined = false};
  c.exec.fp_div = {.units = 1, .latency = 30, .pipelined = false};
  return c;
}

CoreConfig fp_core_config() {
  CoreConfig c;
  c.name = "FP-core";
  c.kind = CoreKind::Fp;
  // Strong FP window.
  c.int_rename_regs = 48;
  c.fp_rename_regs = 96;
  c.int_isq_entries = 16;
  c.fp_isq_entries = 32;
  // Table II, FP row: pipelined FP datapath (two 4-cycle FP ALUs); weak
  // non-pipelined integer units (single 2-cycle ALU).
  c.exec.fp_alu = {.units = 2, .latency = 4, .pipelined = true};
  c.exec.fp_mul = {.units = 1, .latency = 4, .pipelined = true};
  c.exec.fp_div = {.units = 1, .latency = 12, .pipelined = true};
  c.exec.int_alu = {.units = 1, .latency = 2, .pipelined = false};
  c.exec.int_mul = {.units = 1, .latency = 5, .pipelined = false};
  c.exec.int_div = {.units = 1, .latency = 20, .pipelined = false};
  return c;
}

CoreConfig morphed_strong_core_config() {
  // INT core chassis + the FP core's strong floating-point datapath.
  CoreConfig c = int_core_config();
  c.name = "MORPH-strong";
  c.fp_rename_regs = 96;
  c.fp_isq_entries = 32;
  c.exec.fp_alu = {.units = 2, .latency = 4, .pipelined = true};
  c.exec.fp_mul = {.units = 1, .latency = 4, .pipelined = true};
  c.exec.fp_div = {.units = 1, .latency = 12, .pipelined = true};
  c.energy_params.leak_base *= 1.25;  // morphing mux/crossbar overhead
  return c;
}

CoreConfig morphed_weak_core_config() {
  // FP core chassis stripped of its strong FP datapath: weak on all fronts.
  CoreConfig c = fp_core_config();
  c.name = "MORPH-weak";
  c.fp_rename_regs = 48;
  c.fp_isq_entries = 16;
  c.exec.fp_alu = {.units = 1, .latency = 8, .pipelined = false};
  c.exec.fp_mul = {.units = 1, .latency = 10, .pipelined = false};
  c.exec.fp_div = {.units = 1, .latency = 30, .pipelined = false};
  c.energy_params.leak_base *= 1.25;
  return c;
}

CoreConfig big_core_config() {
  CoreConfig c = symmetric_core_config();
  c.name = "BIG-core";
  return c;
}

CoreConfig little_core_config() {
  CoreConfig c;
  c.name = "LITTLE-core";
  c.kind = CoreKind::Int;  // flavor tag unused for size asymmetry
  c.fetch_width = 2;
  c.commit_width = 2;
  c.issue_width = 2;
  c.rob_entries = 32;
  c.int_rename_regs = 32;
  c.fp_rename_regs = 32;
  c.int_isq_entries = 8;
  c.fp_isq_entries = 8;
  c.lq_entries = 8;
  c.sq_entries = 8;
  c.bpred.table_entries = 1024;
  c.bpred.history_bits = 8;
  c.exec.int_alu = {.units = 1, .latency = 1, .pipelined = true};
  c.exec.int_mul = {.units = 1, .latency = 4, .pipelined = false};
  c.exec.int_div = {.units = 1, .latency = 16, .pipelined = false};
  c.exec.fp_alu = {.units = 1, .latency = 5, .pipelined = true};
  c.exec.fp_mul = {.units = 1, .latency = 6, .pipelined = false};
  c.exec.fp_div = {.units = 1, .latency = 16, .pipelined = false};
  return c;
}

CoreConfig fast_core_config() {
  CoreConfig c = symmetric_core_config();
  c.name = "FAST-core";
  return c;
}

CoreConfig slow_core_config() {
  CoreConfig c = symmetric_core_config();
  c.name = "SLOW-core";
  c.clock_divider = 2;  // half frequency, ~quarter dynamic energy per op
  return c;
}

CoreConfig symmetric_core_config() {
  CoreConfig c;
  c.name = "SYM-core";
  c.kind = CoreKind::Int;  // flavor tag is meaningless for the symmetric core
  c.int_rename_regs = 96;
  c.fp_rename_regs = 96;
  c.int_isq_entries = 32;
  c.fp_isq_entries = 32;
  c.exec.int_alu = {.units = 2, .latency = 1, .pipelined = true};
  c.exec.int_mul = {.units = 1, .latency = 3, .pipelined = true};
  c.exec.int_div = {.units = 1, .latency = 12, .pipelined = true};
  c.exec.fp_alu = {.units = 2, .latency = 4, .pipelined = true};
  c.exec.fp_mul = {.units = 1, .latency = 4, .pipelined = true};
  c.exec.fp_div = {.units = 1, .latency = 12, .pipelined = true};
  return c;
}

}  // namespace amps::sim
