#include "sim/thread_context.hpp"

namespace amps::sim {

ThreadContext::ThreadContext(ThreadId id, const wl::BenchmarkSpec& spec,
                             std::uint64_t instance_seed)
    : id_(id),
      source_(std::make_unique<wl::StreamSource>(spec, instance_seed)) {}

ThreadContext::ThreadContext(ThreadId id, std::unique_ptr<wl::OpSource> source)
    : id_(id), source_(std::move(source)) {}

const isa::MicroOp& ThreadContext::peek() {
  if (lookahead_.empty()) lookahead_.push_back(source_->next());
  return lookahead_.front();
}

void ThreadContext::pop() { lookahead_.pop_front(); }

void ThreadContext::unfetch(std::deque<isa::MicroOp>&& squashed) {
  // Squashed ops precede anything still in the lookahead.
  rewind_seq(squashed.size());
  for (auto it = squashed.rbegin(); it != squashed.rend(); ++it)
    lookahead_.push_front(*it);
}

}  // namespace amps::sim
