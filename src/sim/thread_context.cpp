#include "sim/thread_context.hpp"

#include <vector>

#include "workload/trace_store.hpp"

namespace amps::sim {

ThreadContext::ThreadContext(ThreadId id, const wl::BenchmarkSpec& spec,
                             std::uint64_t instance_seed)
    : id_(id), source_(wl::make_op_source(spec, instance_seed)) {}

ThreadContext::ThreadContext(ThreadId id, std::unique_ptr<wl::OpSource> source)
    : id_(id), source_(std::move(source)) {}

void ThreadContext::unfetch(std::deque<isa::MicroOp>&& squashed) {
  // Squashed ops precede anything still buffered.
  rewind_seq(squashed.size());
  if (squashed.empty()) return;
  // Deques are segmented; stage into a contiguous scratch for the ring.
  std::vector<isa::MicroOp> ops(squashed.begin(), squashed.end());
  ring_.prepend(ops.data(), ops.size());
}

}  // namespace amps::sim
