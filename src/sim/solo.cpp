#include "sim/solo.hpp"

#include <algorithm>

#include "sim/core.hpp"
#include "sim/thread_context.hpp"

namespace amps::sim {

SoloResult run_solo(const CoreConfig& cfg, const wl::BenchmarkSpec& spec,
                    InstrCount run_length, Cycles sample_interval,
                    std::uint64_t instance_seed) {
  Core core(cfg);
  ThreadContext thread(/*id=*/0, spec, instance_seed);
  core.attach(&thread);

  SoloResult result;
  const Cycles max_cycles = run_length * 40;
  Cycles now = 0;
  Cycles next_sample = sample_interval;
  isa::InstrCounts last_counts;
  Energy last_energy = 0.0;
  Cycles last_cycles = 0;

  while (thread.committed_total() < run_length && now < max_cycles) {
    // O(1) fast-forward through the core's provably-idle windows, clamped
    // so sampling still observes the exact cycle a per-cycle loop would.
    Cycles h = std::min(core.quiet_horizon(), max_cycles);
    if (sample_interval != 0) h = std::min(h, next_sample);
    if (h > now) {
      core.run_quiet(now, h - now);
      now = h;
    } else {
      core.tick(now);
      ++now;
    }
    if (sample_interval != 0 && now >= next_sample) {
      const isa::InstrCounts delta = thread.committed().since(last_counts);
      const Energy e = core.energy_since_attach();
      const Energy de = e - last_energy;
      const Cycles dc = now - last_cycles;
      SoloSample s;
      s.int_pct = delta.int_pct();
      s.fp_pct = delta.fp_pct();
      s.committed = delta.total();
      s.ipc = dc ? static_cast<double>(delta.total()) / static_cast<double>(dc)
                 : 0.0;
      s.ipc_per_watt =
          de > 0.0 ? static_cast<double>(delta.total()) / de : 0.0;
      result.samples.push_back(s);
      last_counts = thread.committed();
      last_energy = e;
      last_cycles = now;
      next_sample += sample_interval;
    }
  }

  core.detach();
  result.committed = thread.committed_total();
  result.cycles = thread.cycles();
  result.energy = thread.energy();
  result.l2_misses = thread.l2_misses();
  return result;
}

}  // namespace amps::sim
