// Lockstep simulation lanes: step K independent runs round-robin so the
// fan-out consumers (pair sweeps, multicore sweeps, amps-serve batches)
// amortize dispatch and share decode work across runs (DESIGN.md §11).
//
// The engine is deliberately generic: a lane holds any `LaneRun` — an
// object exposing the *exact* scalar run-loop body as a resumable
// `advance()` step. Because the lane path executes the very same code the
// scalar path does (one decision quantum per advance), lane-stepped
// results and decision traces are bit-identical to scalar runs by
// construction, not by reimplementation.
//
// Lanes retire independently: when a run finishes, its lane is refilled
// from the pending queue so occupancy stays high across heterogeneous run
// lengths. `LaneStats` records fills/refills/idle slices for the
// `lane_occupancy_pct` result field and the AMPS_COUNTER registry.
//
// `SharedStream` is the decode-sharing layer: multiple ThreadContexts in
// one lane group reading the same (benchmark, seed) consume a single
// generated/replayed op sequence through per-reader cursors, with the
// consumed prefix pruned as every reader moves past it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "isa/instruction.hpp"
#include "workload/source.hpp"

namespace amps::sim {

/// One resumable simulation occupying a lane. `advance()` performs one
/// scheduler decision quantum — the same body the scalar run loop executes
/// — and `done()` mirrors the scalar loop condition.
class LaneRun {
 public:
  virtual ~LaneRun() = default;
  [[nodiscard]] virtual bool done() const = 0;
  virtual void advance() = 0;
};

/// Occupancy accounting for one LaneEngine::run() sweep set.
struct LaneStats {
  std::size_t lanes = 0;        ///< configured lane width
  std::size_t fills = 0;        ///< initial lane fills
  std::size_t refills = 0;      ///< retire-and-refill events
  std::size_t retired = 0;      ///< runs completed
  std::size_t sweeps = 0;       ///< lockstep passes over the lane array
  std::size_t occupied_slices = 0;  ///< (lane, sweep) slots that advanced
  std::size_t idle_slices = 0;      ///< (lane, sweep) slots with no run

  /// Percentage of (lane, sweep) slots that held a live run; 100 when the
  /// engine never went idle (or never ran at all).
  [[nodiscard]] double occupancy_pct() const noexcept {
    const std::size_t total = occupied_slices + idle_slices;
    return total == 0 ? 100.0
                      : 100.0 * static_cast<double>(occupied_slices) /
                            static_cast<double>(total);
  }
};

/// Steps up to `lanes` LaneRuns in lockstep, refilling finished lanes from
/// a caller-supplied queue. Single-threaded by design — thread-level
/// parallelism stays in harness::parallel_for across lane *groups*.
class LaneEngine {
 public:
  /// Produces the next pending run, or nullptr when the queue is dry.
  using NextRun = std::function<std::unique_ptr<LaneRun>()>;
  /// Receives each finished run (snapshot results, cache stores, ...).
  using Retire = std::function<void(std::unique_ptr<LaneRun>)>;

  LaneEngine(std::size_t lanes, NextRun next, Retire retire);

  /// Fills the lanes, sweeps until every run retired, returns the stats.
  LaneStats run();

 private:
  /// Installs runs into `slot` until one is unfinished or the queue is
  /// dry; already-done runs (e.g. zero-length) are retired immediately.
  void fill_slot(std::size_t slot);

  std::size_t lanes_;
  NextRun next_;
  Retire retire_;
  std::vector<std::unique_ptr<LaneRun>> slots_;
  LaneStats stats_;
};

class SharedStreamSource;

/// One op sequence shared by several readers. The buffer grows in
/// wl::kTraceChunkOps batches pulled from the underlying source (so trace
/// capture/replay compose unchanged) and the front is pruned once every
/// registered reader has consumed it.
class SharedStream {
 public:
  SharedStream(std::unique_ptr<wl::OpSource> source);

  /// Copies ops [reader.pos_, reader.pos_ + n) into `out` and advances the
  /// reader's cursor, growing/pruning the buffer as needed.
  void read(SharedStreamSource& reader, isa::MicroOp* out, std::size_t n);

  [[nodiscard]] const std::string& name() const noexcept {
    return source_->name();
  }
  /// Ops currently buffered (post-prune) — exposed for tests.
  [[nodiscard]] std::size_t buffered_ops() const noexcept {
    return buffer_.size();
  }
  /// Absolute index of the first op still buffered. A stream is joinable
  /// by a fresh reader (which starts at op 0) only while this is 0.
  [[nodiscard]] std::uint64_t base() const noexcept { return base_; }

  void attach(SharedStreamSource* reader);
  void detach(SharedStreamSource* reader) noexcept;

 private:
  void ensure_through(std::uint64_t end);  ///< grow to cover [.., end)
  void prune_front();

  std::unique_ptr<wl::OpSource> source_;
  std::vector<isa::MicroOp> buffer_;
  std::uint64_t base_ = 0;  ///< absolute index of buffer_[0]
  std::vector<SharedStreamSource*> readers_;
};

/// Per-reader cursor over a SharedStream; plugs into ThreadContext as a
/// regular wl::OpSource. name() forwards the benchmark name so metrics
/// snapshots are identical to private-source runs.
class SharedStreamSource final : public wl::OpSource {
 public:
  explicit SharedStreamSource(std::shared_ptr<SharedStream> stream);
  ~SharedStreamSource() override;

  SharedStreamSource(const SharedStreamSource&) = delete;
  SharedStreamSource& operator=(const SharedStreamSource&) = delete;

  isa::MicroOp next() override;
  void next_batch(isa::MicroOp* out, std::size_t n) override;
  [[nodiscard]] const std::string& name() const noexcept override {
    return stream_->name();
  }
  [[nodiscard]] std::uint64_t position() const noexcept { return pos_; }

 private:
  friend class SharedStream;
  std::shared_ptr<SharedStream> stream_;
  std::uint64_t pos_ = 0;
};

/// Deduplicates SharedStreams within one lane group: every run of the same
/// (benchmark spec, instance seed) decodes the sequence once. Keyed by
/// spec *identity* — conservative (never aliases two distinct specs that
/// happen to share a name) and sufficient, since every consumer draws the
/// jobs of one executor call from a single catalog. Not thread-safe —
/// create one cache per lane group.
class SharedStreamCache {
 public:
  /// Opens a cursor over the (possibly shared) stream for `spec`. The spec
  /// must outlive the cache and every cursor.
  std::unique_ptr<wl::OpSource> open(const wl::BenchmarkSpec& spec,
                                     std::uint64_t instance_seed = 0);

  /// Distinct underlying streams opened so far — exposed for tests.
  [[nodiscard]] std::size_t streams() const noexcept {
    return streams_.size();
  }

 private:
  struct Entry {
    const wl::BenchmarkSpec* spec;
    std::uint64_t instance_seed;
    std::shared_ptr<SharedStream> stream;
  };
  std::vector<Entry> streams_;
};

}  // namespace amps::sim
