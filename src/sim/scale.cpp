#include "sim/scale.hpp"

#include "common/env.hpp"

namespace amps::sim {

SimScale SimScale::from_env() noexcept {
  return env_paper_scale() ? paper() : ci();
}

}  // namespace amps::sim
