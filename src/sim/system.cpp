#include "sim/system.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/stats.hpp"

namespace amps::sim {

DualCoreSystem::DualCoreSystem(const CoreConfig& a, const CoreConfig& b,
                               Cycles swap_overhead,
                               std::optional<uarch::CacheConfig> shared_l2)
    : swap_overhead_(swap_overhead) {
  if (shared_l2.has_value())
    shared_l2_ = std::make_unique<uarch::SharedL2>(*shared_l2);
  cores_[0] = std::make_unique<Core>(a, shared_l2_.get());
  cores_[1] = std::make_unique<Core>(b, shared_l2_.get());
}

void DualCoreSystem::attach_threads(ThreadContext* t0, ThreadContext* t1) {
  assert(t0 != nullptr && t1 != nullptr);
  threads_[0] = t0;
  threads_[1] = t1;
  cores_[0]->attach(t0);
  cores_[1]->attach(t1);
}

void DualCoreSystem::swap_threads() {
  if (swap_pending_) return;  // already migrating
  assert(threads_[0] != nullptr && threads_[1] != nullptr);
  cores_[0]->detach();
  cores_[1]->detach();
  std::swap(threads_[0], threads_[1]);
  threads_[0]->count_swap();
  threads_[1]->count_swap();
  ++swaps_;
  AMPS_COUNTER_INC("sim.thread_swaps");
  swap_pending_ = true;
  swap_resume_at_ = now_ + swap_overhead_;
  swap_idle_energy_start_ = total_energy();
}

void DualCoreSystem::morph_cores(const CoreConfig& cfg0,
                                 const CoreConfig& cfg1, Cycles overhead,
                                 bool also_swap_threads) {
  if (swap_pending_) return;  // a reconfiguration is already in flight
  assert(threads_[0] != nullptr && threads_[1] != nullptr);
  cores_[0]->detach();
  cores_[1]->detach();
  cores_[0]->reconfigure(cfg0);
  cores_[1]->reconfigure(cfg1);
  if (also_swap_threads) {
    std::swap(threads_[0], threads_[1]);
    threads_[0]->count_swap();
    threads_[1]->count_swap();
    ++swaps_;
  }
  ++morphs_;
  AMPS_COUNTER_INC("sim.core_morphs");
  swap_pending_ = true;
  swap_resume_at_ = now_ + overhead;
  swap_idle_energy_start_ = total_energy();
}

void DualCoreSystem::step() {
  if (swap_pending_ && now_ >= swap_resume_at_) {
    // Charge the idle (migration) energy to the threads, half each, so
    // system IPC/Watt accounts for the overhead the paper studies (§VI-C).
    const Energy idle = total_energy() - swap_idle_energy_start_;
    threads_[0]->add_energy(idle * 0.5);
    threads_[1]->add_energy(idle * 0.5);
    cores_[0]->attach(threads_[0]);
    cores_[1]->attach(threads_[1]);
    swap_pending_ = false;
  }
  cores_[0]->tick(now_);
  cores_[1]->tick(now_);
  ++now_;
}

Cycles DualCoreSystem::idle_fast_forward(Cycles limit) {
  if (now_ >= limit) return 0;
  if (swap_pending_) {
    // Both cores are detached until the swap resumes: pure leakage.
    if (now_ >= swap_resume_at_) return 0;  // step() re-attaches
    const Cycles jump = std::min(swap_resume_at_, limit) - now_;
    cores_[0]->run_idle(jump);
    cores_[1]->run_idle(jump);
    now_ += jump;
    AMPS_COUNTER_ADD("sim.idle_ff_cycles", jump);
    return jump;
  }
  // Both cores quiescent: each tick in the span is a counter bump the
  // cores replay in bulk. Quiet cycles commit nothing and request nothing,
  // so no swap/budget condition can arise inside the span.
  const Cycles h = std::min({cores_[0]->quiet_horizon(),
                             cores_[1]->quiet_horizon(), limit});
  if (h <= now_) return 0;
  const Cycles jump = h - now_;
  cores_[0]->run_quiet(now_, jump);
  cores_[1]->run_quiet(now_, jump);
  now_ += jump;
  AMPS_COUNTER_ADD("sim.idle_ff_cycles", jump);
  return jump;
}

Cycles DualCoreSystem::step_until(Cycles until_cycle,
                                  InstrCount commit_budget) {
  assert(threads_[0] != nullptr && threads_[1] != nullptr);
  const Cycles start = now_;
  const InstrCount base0 = threads_[0]->committed_total();
  const InstrCount base1 = threads_[1]->committed_total();
  while (now_ < until_cycle) {
    if (idle_fast_forward(until_cycle) != 0) continue;
    step();
    if (threads_[0]->committed_total() - base0 >= commit_budget ||
        threads_[1]->committed_total() - base1 >= commit_budget)
      break;
  }
  // One relaxed add per *batch* (decision interval), not per cycle.
  AMPS_COUNTER_ADD("sim.batched_cycles", now_ - start);
  return now_ - start;
}

Cycles DualCoreSystem::run_until_committed(InstrCount target,
                                           Cycles max_cycles) {
  const Cycles start = now_;
  const Cycles limit =
      max_cycles != 0 ? start + max_cycles : ~Cycles{0};
  while (threads_[0]->committed_total() < target ||
         threads_[1]->committed_total() < target) {
    if (max_cycles != 0 && now_ - start >= max_cycles) break;
    if (idle_fast_forward(limit) != 0) continue;
    step();
  }
  return now_ - start;
}

std::size_t DualCoreSystem::core_of(ThreadId tid) const {
  if (threads_[0] != nullptr && threads_[0]->id() == tid) return 0;
  if (threads_[1] != nullptr && threads_[1]->id() == tid) return 1;
  throw std::out_of_range("core_of: unknown thread id");
}

Energy DualCoreSystem::live_energy(const ThreadContext& t) const {
  Energy e = t.energy();
  for (std::size_t i = 0; i < 2; ++i)
    if (cores_[i]->thread() == &t) e += cores_[i]->energy_since_attach();
  return e;
}

std::uint64_t DualCoreSystem::live_l2_misses(const ThreadContext& t) const {
  std::uint64_t m = t.l2_misses();
  for (std::size_t i = 0; i < 2; ++i)
    if (cores_[i]->thread() == &t) m += cores_[i]->l2_misses_since_attach();
  return m;
}

}  // namespace amps::sim
