// Simulation scale presets. The paper runs 500 M-instruction workloads on
// a 2 GHz machine where one Linux context-switch interval ("2 ms") is
// 4 M cycles. That is reproducible here (preset `paper()`), but CI runs use
// a proportionally scaled-down preset that keeps the ratios
//   decision interval : monitoring window : phase dwell
// intact, which is what determines every crossover the paper reports.
#pragma once

#include "common/types.hpp"

namespace amps::sim {

struct SimScale {
  /// The coarse decision interval ("2 ms"): HPE re-evaluates, Round-Robin
  /// swaps, and the proposed scheme force-swaps same-flavor pairs at this
  /// period.
  Cycles context_switch_interval = 150'000;

  /// Per-thread committed-instruction budget for one experiment run.
  InstrCount run_length = 300'000;

  /// Committed-instruction monitoring window of the proposed scheme
  /// (paper Fig. 6 best point: 1000).
  InstrCount window_size = 1000;

  /// Majority-vote depth over recent windows (paper Fig. 6 best point: 5).
  int history_depth = 5;

  /// Thread-swap cost in cycles (paper §VI-C default: 100).
  Cycles swap_overhead = 100;

  /// When nonzero, overrides max_cycles() (tests use this to force runs to
  /// truncate at the cycle bound).
  Cycles max_cycles_override = 0;

  /// Hard cycle bound for a run (guards against pathological stalls);
  /// 0 disables.
  [[nodiscard]] Cycles max_cycles() const noexcept {
    return max_cycles_override != 0 ? max_cycles_override : run_length * 40;
  }

  /// CI-friendly scaled-down preset (default).
  static SimScale ci() noexcept { return SimScale{}; }

  /// Paper-faithful preset: 4 M-cycle intervals, 20 M-instruction runs
  /// (the full 500 M is pointless for a statistical workload model — the
  /// streams are stationary beyond a few phase cycles).
  static SimScale paper() noexcept {
    SimScale s;
    s.context_switch_interval = 4'000'000;
    s.run_length = 20'000'000;
    return s;
  }

  /// Reads AMPS_SCALE ({ci|paper}, default ci).
  static SimScale from_env() noexcept;
};

}  // namespace amps::sim
