// ThreadContext: everything that migrates with a thread when it swaps
// between cores — the instruction stream (architectural state proxy), the
// replay buffer of squashed-but-uncommitted ops, and cumulative committed /
// cycle / energy statistics used by the schedulers.
#pragma once

#include <deque>
#include <memory>
#include <string>

#include "common/types.hpp"
#include "isa/mix.hpp"
#include "workload/arrivals.hpp"
#include "workload/decoded_ring.hpp"
#include "workload/source.hpp"

namespace amps::sim {

class ThreadContext {
 public:
  /// Statistical-model thread (the default): draws from `spec`'s stream
  /// via wl::make_op_source, so every runner picks up trace-store
  /// capture/replay (AMPS_TRACE_* knobs) through this one constructor. The
  /// consumed op sequence is bit-identical with the store on or off.
  ThreadContext(ThreadId id, const wl::BenchmarkSpec& spec,
                std::uint64_t instance_seed = 0);

  /// Thread drawing from an arbitrary micro-op source (e.g., a recorded
  /// trace via wl::TraceSource).
  ThreadContext(ThreadId id, std::unique_ptr<wl::OpSource> source);

  [[nodiscard]] ThreadId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept {
    return source_->name();
  }
  [[nodiscard]] const wl::OpSource& source() const noexcept {
    return *source_;
  }

  /// Next micro-op without consuming it (refills the decoded-op ring from
  /// the source on demand). Defined inline: this is the fetch stage's
  /// per-op read and is a bounds check + array load in the common case.
  const isa::MicroOp& peek() {
    if (ring_.empty()) ring_.refill(*source_);
    return ring_.front();
  }
  /// Consumes the op returned by the last peek().
  void pop() noexcept { ring_.pop_front(); }

  /// Returns squashed, uncommitted ops (oldest first) for re-execution
  /// after a pipeline flush. They are replayed before any new stream ops.
  void unfetch(std::deque<isa::MicroOp>&& squashed);

  /// How many ops the ring pre-decodes per source refill. The attached
  /// core sets this (1 for the legacy engine, a few hundred for the fast
  /// one); the consumed sequence is identical either way.
  void set_decode_batch(std::size_t batch) noexcept {
    ring_.set_batch(batch);
  }

  /// Per-thread dynamic sequence number of the next op to fetch. Producer
  /// dependencies are expressed as distances from this numbering.
  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }
  void advance_seq() noexcept { ++next_seq_; }
  void rewind_seq(std::uint64_t n) noexcept { next_seq_ -= n; }

  // --- cumulative statistics (updated by the core while attached) -------
  isa::InstrCounts& committed() noexcept { return committed_; }
  [[nodiscard]] const isa::InstrCounts& committed() const noexcept {
    return committed_;
  }
  [[nodiscard]] InstrCount committed_total() const noexcept {
    return committed_.total();
  }

  void add_cycles(Cycles n) noexcept { cycles_ += n; }
  [[nodiscard]] Cycles cycles() const noexcept { return cycles_; }

  void add_energy(Energy e) noexcept { energy_ += e; }
  [[nodiscard]] Energy energy() const noexcept { return energy_; }

  /// Number of times this thread has been migrated between cores.
  void count_swap() noexcept { ++swaps_; }
  [[nodiscard]] std::uint64_t swaps() const noexcept { return swaps_; }

  /// Last-level-cache misses attributed to this thread (settled at detach,
  /// like energy). Used by the extended swap rules (paper §VII future
  /// work: add LLC-miss information to the swapping conditions).
  void add_l2_misses(std::uint64_t n) noexcept { l2_misses_ += n; }
  [[nodiscard]] std::uint64_t l2_misses() const noexcept { return l2_misses_; }

  // --- open-system lifecycle (set by the OpenSystem; inert otherwise) ----
  /// Arms the lifecycle model: the thread exits after committing
  /// `job_length` instructions (0 = endless) and blocks per `io`.
  void configure_lifecycle(InstrCount job_length,
                           const wl::IoProfile& io) noexcept {
    job_length_ = job_length;
    io_ = io;
    next_stall_ = io_.blocking() ? io_.stall_interval : 0;
  }
  [[nodiscard]] InstrCount job_length() const noexcept { return job_length_; }
  [[nodiscard]] const wl::IoProfile& io_profile() const noexcept {
    return io_;
  }
  /// True once the thread has committed its whole job.
  [[nodiscard]] bool job_complete() const noexcept {
    return job_length_ != 0 && committed_total() >= job_length_;
  }
  /// True when the thread has committed past its next modeled-I/O stall
  /// point (absolute committed-instruction threshold).
  [[nodiscard]] bool io_due() const noexcept {
    return io_.blocking() && committed_total() >= next_stall_;
  }
  /// Re-arms the next stall threshold after a stall is taken.
  void schedule_next_stall() noexcept {
    next_stall_ = committed_total() + io_.stall_interval;
  }
  /// Absolute committed-instruction threshold of the next stall (0 when
  /// the thread never blocks).
  [[nodiscard]] InstrCount next_stall() const noexcept { return next_stall_; }

  /// IPC over the thread's whole life (0 when no cycles ran).
  [[nodiscard]] double ipc() const noexcept {
    return cycles_ ? static_cast<double>(committed_total()) /
                         static_cast<double>(cycles_)
                   : 0.0;
  }
  /// Lifetime IPC/Watt. Power is energy/cycles, so IPC/Watt reduces to
  /// instructions per unit energy: (I/C) / (E/C) = I/E.
  [[nodiscard]] double ipc_per_watt() const noexcept {
    return energy_ > 0.0 ? static_cast<double>(committed_total()) / energy_
                         : 0.0;
  }

 private:
  ThreadId id_;
  std::unique_ptr<wl::OpSource> source_;
  wl::DecodedRing ring_;
  std::uint64_t next_seq_ = 0;

  isa::InstrCounts committed_;
  Cycles cycles_ = 0;
  Energy energy_ = 0.0;
  std::uint64_t swaps_ = 0;
  std::uint64_t l2_misses_ = 0;

  InstrCount job_length_ = 0;  ///< 0 = endless (closed-system thread)
  wl::IoProfile io_;
  InstrCount next_stall_ = 0;  ///< absolute committed count of next stall
};

}  // namespace amps::sim
