#include "sim/core.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace amps::sim {

namespace {
constexpr std::uint64_t kLineShift = 6;  // 64-byte fetch lines

/// All core-internal latencies are configured in *core* cycles; the
/// simulator's timebase is the global (reference) clock, so a down-clocked
/// core's latencies stretch by its divider. Off-chip DRAM latency is wall
/// time and stays as-is.
CoreConfig stretch_to_global_clock(CoreConfig cfg) {
  const std::uint32_t d = cfg.clock_divider;
  if (d <= 1) return cfg;
  for (uarch::FuSpec* spec :
       {&cfg.exec.int_alu, &cfg.exec.int_mul, &cfg.exec.int_div,
        &cfg.exec.fp_alu, &cfg.exec.fp_mul, &cfg.exec.fp_div})
    spec->latency *= d;
  cfg.mem_lat.l1_hit *= d;
  cfg.mem_lat.l2_hit *= d;
  cfg.mispredict_penalty *= d;
  return cfg;
}
}  // namespace

Core::Core(const CoreConfig& cfg)
    : Core(stretch_to_global_clock(cfg), /*already_stretched=*/true, nullptr) {}

Core::Core(const CoreConfig& cfg, uarch::SharedL2* shared_l2)
    : Core(stretch_to_global_clock(cfg), /*already_stretched=*/true,
           shared_l2) {}

Core::Core(const CoreConfig& cfg, bool, uarch::SharedL2* shared_l2)
    : cfg_(cfg),
      caches_(cfg.il1, cfg.dl1, cfg.l2, cfg.mem_lat, cfg.prefetch_next_line,
              shared_l2),
      bpred_(cfg.bpred),
      exec_(cfg.exec),
      energy_model_(cfg.structure_sizes(),
                    cfg.energy_params.scaled_for_dvfs(cfg.clock_divider)),
      power_(energy_model_),
      int_regs_("INTREG", cfg.int_rename_regs),
      fp_regs_("FPREG", cfg.fp_rename_regs),
      int_isq_slots_("INTISQ", cfg.int_isq_entries),
      fp_isq_slots_("FPISQ", cfg.fp_isq_entries),
      lq_slots_("LQ", cfg.lq_entries),
      sq_slots_("SQ", cfg.sq_entries),
      rob_(cfg.rob_entries) {
  std::string why;
  if (!cfg.validate(&why)) throw std::invalid_argument("Core: " + why);
  int_isq_.reserve(cfg.int_isq_entries);
  fp_isq_.reserve(cfg.fp_isq_entries);
  lq_.reserve(cfg.lq_entries);
  sq_.reserve(cfg.sq_entries);
}

void Core::attach(ThreadContext* thread) {
  assert(thread_ == nullptr && "attach: core already has a thread");
  assert(rob_count_ == 0 && "attach: pipeline not empty");
  thread_ = thread;
  attach_energy_ = power_.total();
  attach_l2_misses_ = caches_.l2_demand_misses();
  head_seq_ = thread->next_seq();
  last_fetch_line_ = ~0ULL;
  fetch_resume_at_ = 0;
  redirect_pending_ = false;
}

ThreadContext* Core::detach() {
  if (thread_ == nullptr) return nullptr;

  // Squash in-flight ops oldest-first and hand them back for replay.
  std::deque<isa::MicroOp> squashed;
  for (std::size_t i = 0; i < rob_count_; ++i)
    squashed.push_back(rob_[(rob_head_ + i) % rob_.size()].op);
  thread_->unfetch(std::move(squashed));

  rob_head_ = 0;
  rob_count_ = 0;
  int_isq_.clear();
  fp_isq_.clear();
  lq_.clear();
  sq_.clear();
  int_regs_.clear();
  fp_regs_.clear();
  int_isq_slots_.clear();
  fp_isq_slots_.clear();
  lq_slots_.clear();
  sq_slots_.clear();
  exec_.reset_occupancy();
  branch_port_free_ = 0;
  redirect_pending_ = false;
  fetch_resume_at_ = 0;

  thread_->add_energy(energy_since_attach());
  thread_->add_l2_misses(l2_misses_since_attach());
  ThreadContext* out = thread_;
  thread_ = nullptr;
  return out;
}

void Core::reconfigure(const CoreConfig& cfg) {
  if (thread_ != nullptr)
    throw std::logic_error("Core::reconfigure: detach the thread first");
  std::string why;
  if (!cfg.validate(&why))
    throw std::invalid_argument("Core::reconfigure: " + why);
  if (cfg.clock_divider != cfg_.clock_divider)
    throw std::invalid_argument(
        "Core::reconfigure: changing the operating point is not supported "
        "(the cache hierarchy's latencies are fixed at construction)");

  cfg_ = stretch_to_global_clock(cfg);
  exec_ = uarch::ExecUnits(cfg_.exec);
  energy_model_ = power::EnergyModel(
      cfg_.structure_sizes(),
      cfg_.energy_params.scaled_for_dvfs(cfg_.clock_divider));
  power_.rebind_model(energy_model_);

  rob_.assign(cfg.rob_entries, RobEntry{});
  rob_head_ = 0;
  rob_count_ = 0;
  int_regs_.reset_capacity(cfg.int_rename_regs);
  fp_regs_.reset_capacity(cfg.fp_rename_regs);
  int_isq_slots_.reset_capacity(cfg.int_isq_entries);
  fp_isq_slots_.reset_capacity(cfg.fp_isq_entries);
  lq_slots_.reset_capacity(cfg.lq_entries);
  sq_slots_.reset_capacity(cfg.sq_entries);
  // Caches and branch-predictor contents persist: morphing rearranges the
  // datapath, not the memory arrays.
}

std::size_t Core::rob_index_of(std::uint64_t seq) const noexcept {
  return (rob_head_ + static_cast<std::size_t>(seq - head_seq_)) % rob_.size();
}

bool Core::dep_ready(std::uint64_t seq, std::uint16_t dist,
                     Cycles now) const noexcept {
  if (dist == 0 || dist > seq) return true;   // no producer
  const std::uint64_t pseq = seq - dist;
  if (pseq < head_seq_) return true;          // producer already retired
  const RobEntry& p = rob_[rob_index_of(pseq)];
  return p.issued && p.complete_at <= now;
}

bool Core::operands_ready(const RobEntry& e, Cycles now) const noexcept {
  return dep_ready(e.seq, e.op.dep1, now) && dep_ready(e.seq, e.op.dep2, now);
}

void Core::charge_mem(uarch::MemLevel level) noexcept {
  power_.on_l1_access();
  if (level != uarch::MemLevel::L1) power_.on_l2_access();
  if (level == uarch::MemLevel::Memory) power_.on_memory_access();
}

void Core::tick(Cycles now) {
  power_.on_cycle();
  if (thread_ == nullptr) return;  // idle: leakage only

  thread_->add_cycles(1);
  // DVFS: a down-clocked core's pipeline only advances on its own clock
  // edges; leakage (already voltage-scaled) accrues every global cycle.
  if (cfg_.clock_divider > 1 && now % cfg_.clock_divider != 0) return;
  int_regs_.tick();
  fp_regs_.tick();
  int_isq_slots_.tick();
  fp_isq_slots_.tick();

  commit_stage(now);
  issue_stage(now);
  fetch_stage(now);
}

void Core::commit_stage(Cycles now) {
  unsigned retired = 0;
  while (rob_count_ > 0 && retired < cfg_.commit_width) {
    RobEntry& head = rob_[rob_head_];
    if (!head.issued || head.complete_at > now) break;

    const isa::InstrClass cls = head.op.cls;
    thread_->committed().add(cls);
    ++committed_ops_;
    power_.on_commit(1);

    // Release renamed destination register.
    if (isa::is_int(cls) || cls == isa::InstrClass::Load)
      int_regs_.release();
    else if (isa::is_fp(cls))
      fp_regs_.release();

    if (cls == isa::InstrClass::Load) {
      lq_slots_.release();
    } else if (cls == isa::InstrClass::Store) {
      // Stores update the data cache at retirement (store-buffer model);
      // latency is off the critical path, energy is not.
      const auto acc = caches_.data_access(head.op.mem_addr, true, now);
      charge_mem(acc.level);
      sq_slots_.release();
    }

    rob_head_ = (rob_head_ + 1) % rob_.size();
    --rob_count_;
    ++head_seq_;
    ++retired;
  }
}

void Core::issue_stage(Cycles now) {
  unsigned budget = cfg_.issue_width;

  // Integer queue: arithmetic via the INT pools, branches via the branch
  // port. Oldest-first.
  for (auto it = int_isq_.begin(); it != int_isq_.end() && budget > 0;) {
    RobEntry& e = rob_[*it];
    if (!operands_ready(e, now)) {
      ++it;
      continue;
    }
    Cycles done = 0;
    if (e.op.cls == isa::InstrClass::Branch) {
      if (branch_port_free_ <= now) {
        branch_port_free_ = now + 1;
        done = now + 1;
      }
    } else {
      done = exec_.try_issue(e.op.cls, now);
    }
    if (done == 0) {
      ++it;  // structural hazard; try younger ops (out-of-order select)
      continue;
    }
    e.issued = true;
    e.complete_at = done;
    power_.on_issue(e.op.cls);
    int_isq_slots_.release();
    it = int_isq_.erase(it);
    --budget;
  }

  // Floating-point queue.
  for (auto it = fp_isq_.begin(); it != fp_isq_.end() && budget > 0;) {
    RobEntry& e = rob_[*it];
    if (!operands_ready(e, now)) {
      ++it;
      continue;
    }
    const Cycles done = exec_.try_issue(e.op.cls, now);
    if (done == 0) {
      ++it;
      continue;
    }
    e.issued = true;
    e.complete_at = done;
    power_.on_issue(e.op.cls);
    fp_isq_slots_.release();
    it = fp_isq_.erase(it);
    --budget;
  }

  // One load per cycle through the load port; the access starts after a
  // 1-cycle AGU stage.
  if (budget > 0) {
    for (auto it = lq_.begin(); it != lq_.end(); ++it) {
      RobEntry& e = rob_[*it];
      if (!operands_ready(e, now)) continue;
      const auto acc = caches_.data_access(e.op.mem_addr, false, now);
      charge_mem(acc.level);
      e.issued = true;
      e.complete_at = now + 1 + acc.latency;
      power_.on_issue(e.op.cls);
      lq_.erase(it);
      --budget;
      break;
    }
  }

  // One store per cycle: address generation only; data is written at commit.
  if (budget > 0) {
    for (auto it = sq_.begin(); it != sq_.end(); ++it) {
      RobEntry& e = rob_[*it];
      if (!operands_ready(e, now)) continue;
      e.issued = true;
      e.complete_at = now + 1;
      power_.on_issue(e.op.cls);
      sq_.erase(it);
      break;
    }
  }
}

void Core::fetch_stage(Cycles now) {
  // Resolve an outstanding mispredict redirect: the front end restarts a
  // fixed penalty after the branch executes.
  if (redirect_pending_) {
    if (redirect_seq_ < head_seq_) {
      // Branch already retired (possible this same cycle); restart now.
      redirect_pending_ = false;
    } else {
      const RobEntry& b = rob_[rob_index_of(redirect_seq_)];
      if (b.issued && b.complete_at <= now) {
        fetch_resume_at_ =
            std::max(fetch_resume_at_, b.complete_at + cfg_.mispredict_penalty);
        redirect_pending_ = false;
      } else {
        ++stalls_.redirect;
        return;
      }
    }
  }
  if (now < fetch_resume_at_) {
    ++stalls_.redirect;
    return;
  }

  for (unsigned i = 0; i < cfg_.fetch_width; ++i) {
    if (rob_count_ == rob_.size()) {
      ++stalls_.rob_full;
      break;
    }
    const isa::MicroOp& op = thread_->peek();

    // Instruction cache: one lookup per new fetch line.
    const std::uint64_t line = op.pc >> kLineShift;
    if (line != last_fetch_line_) {
      const auto acc = caches_.fetch(op.pc, now);
      charge_mem(acc.level);
      last_fetch_line_ = line;
      if (acc.level != uarch::MemLevel::L1) {
        fetch_resume_at_ = now + acc.latency;
        ++stalls_.icache;
        break;
      }
    }

    // Structural resources; check everything before consuming the op.
    const isa::InstrClass cls = op.cls;
    const bool needs_int_reg = isa::is_int(cls) || cls == isa::InstrClass::Load;
    const bool needs_fp_reg = isa::is_fp(cls);
    if (needs_int_reg && int_regs_.available() == 0) {
      ++stalls_.int_reg;
      break;
    }
    if (needs_fp_reg && fp_regs_.available() == 0) {
      ++stalls_.fp_reg;
      break;
    }
    if ((isa::is_int(cls) || cls == isa::InstrClass::Branch) &&
        int_isq_slots_.available() == 0) {
      ++stalls_.int_isq_full;
      break;
    }
    if (isa::is_fp(cls) && fp_isq_slots_.available() == 0) {
      ++stalls_.fp_isq_full;
      break;
    }
    if (cls == isa::InstrClass::Load && lq_slots_.available() == 0) {
      ++stalls_.lsq_full;
      break;
    }
    if (cls == isa::InstrClass::Store && sq_slots_.available() == 0) {
      ++stalls_.lsq_full;
      break;
    }

    // Dispatch.
    const std::size_t idx = (rob_head_ + rob_count_) % rob_.size();
    rob_[idx] = RobEntry{.op = op, .seq = thread_->next_seq(),
                         .complete_at = 0, .issued = false};
    ++rob_count_;
    thread_->advance_seq();
    thread_->pop();

    power_.on_fetch(1);
    power_.on_rename(1);
    power_.on_dispatch(1);
    if (needs_int_reg) int_regs_.acquire();
    if (needs_fp_reg) fp_regs_.acquire();

    bool mispredicted = false;
    switch (cls) {
      case isa::InstrClass::Load:
        lq_slots_.acquire();
        power_.on_lsq_insert();
        lq_.push_back(static_cast<std::uint32_t>(idx));
        break;
      case isa::InstrClass::Store:
        sq_slots_.acquire();
        power_.on_lsq_insert();
        sq_.push_back(static_cast<std::uint32_t>(idx));
        break;
      case isa::InstrClass::Branch:
        power_.on_bpred_lookup();
        mispredicted = bpred_.access(rob_[idx].op.pc, rob_[idx].op.branch_taken);
        int_isq_slots_.acquire();
        int_isq_.push_back(static_cast<std::uint32_t>(idx));
        break;
      default:
        if (isa::is_fp(cls)) {
          fp_isq_slots_.acquire();
          fp_isq_.push_back(static_cast<std::uint32_t>(idx));
        } else {
          int_isq_slots_.acquire();
          int_isq_.push_back(static_cast<std::uint32_t>(idx));
        }
        break;
    }

    if (mispredicted) {
      // No wrong-path modeling: the front end waits for the branch to
      // execute, then pays the redirect penalty.
      redirect_pending_ = true;
      redirect_seq_ = rob_[idx].seq;
      break;
    }
  }
}

}  // namespace amps::sim
