#include "sim/core.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace amps::sim {

namespace {
constexpr std::uint64_t kLineShift = 6;  // 64-byte fetch lines
/// Ops the fast engine pre-decodes per stream refill. Any value yields the
/// same consumed sequence; this just amortizes the source virtual call.
constexpr std::size_t kFastDecodeBatch = 256;

/// Per-class structural-resource flags. The per-op fetch and commit loops
/// test these off one table byte instead of re-deriving each predicate;
/// the bits encode exactly the is_int/is_fp/Load/Store combinations the
/// reference stages check, in the same order.
enum : std::uint8_t {
  kNeedsIntReg = 1 << 0,  // integer arithmetic + loads
  kNeedsFpReg = 1 << 1,   // fp arithmetic
  kNeedsIntIsq = 1 << 2,  // integer arithmetic + branches
  kNeedsFpIsq = 1 << 3,   // fp arithmetic
  kNeedsLq = 1 << 4,
  kNeedsSq = 1 << 5,
};
constexpr std::array<std::uint8_t, isa::kNumInstrClasses> kClassFlags = [] {
  std::array<std::uint8_t, isa::kNumInstrClasses> t{};
  for (std::size_t i = 0; i < isa::kNumInstrClasses; ++i) {
    const auto c = static_cast<isa::InstrClass>(i);
    std::uint8_t f = 0;
    if (isa::is_int(c) || c == isa::InstrClass::Load) f |= kNeedsIntReg;
    if (isa::is_fp(c)) f |= kNeedsFpReg | kNeedsFpIsq;
    if (isa::is_int(c) || c == isa::InstrClass::Branch) f |= kNeedsIntIsq;
    if (c == isa::InstrClass::Load) f |= kNeedsLq;
    if (c == isa::InstrClass::Store) f |= kNeedsSq;
    t[i] = f;
  }
  return t;
}();

/// All core-internal latencies are configured in *core* cycles; the
/// simulator's timebase is the global (reference) clock, so a down-clocked
/// core's latencies stretch by its divider. Off-chip DRAM latency is wall
/// time and stays as-is.
CoreConfig stretch_to_global_clock(CoreConfig cfg) {
  const std::uint32_t d = cfg.clock_divider;
  if (d <= 1) return cfg;
  for (uarch::FuSpec* spec :
       {&cfg.exec.int_alu, &cfg.exec.int_mul, &cfg.exec.int_div,
        &cfg.exec.fp_alu, &cfg.exec.fp_mul, &cfg.exec.fp_div})
    spec->latency *= d;
  cfg.mem_lat.l1_hit *= d;
  cfg.mem_lat.l2_hit *= d;
  cfg.mispredict_penalty *= d;
  return cfg;
}
}  // namespace

Core::Core(const CoreConfig& cfg)
    : Core(stretch_to_global_clock(cfg), /*already_stretched=*/true, nullptr) {}

Core::Core(const CoreConfig& cfg, uarch::SharedL2* shared_l2)
    : Core(stretch_to_global_clock(cfg), /*already_stretched=*/true,
           shared_l2) {}

Core::Core(const CoreConfig& cfg, bool, uarch::SharedL2* shared_l2)
    : cfg_(cfg),
      caches_(cfg.il1, cfg.dl1, cfg.l2, cfg.mem_lat, cfg.prefetch_next_line,
              shared_l2),
      bpred_(cfg.bpred),
      exec_(cfg.exec),
      energy_model_(cfg.structure_sizes(),
                    cfg.energy_params.scaled_for_dvfs(cfg.clock_divider)),
      power_(energy_model_),
      int_regs_("INTREG", cfg.int_rename_regs),
      fp_regs_("FPREG", cfg.fp_rename_regs),
      int_isq_slots_("INTISQ", cfg.int_isq_entries),
      fp_isq_slots_("FPISQ", cfg.fp_isq_entries),
      lq_slots_("LQ", cfg.lq_entries),
      sq_slots_("SQ", cfg.sq_entries),
      rob_(cfg.rob_entries) {
  std::string why;
  if (!cfg.validate(&why)) throw std::invalid_argument("Core: " + why);
  int_isq_.reserve(cfg.int_isq_entries);
  fp_isq_.reserve(cfg.fp_isq_entries);
  lq_.reserve(cfg.lq_entries);
  sq_.reserve(cfg.sq_entries);
  f_op_.assign(cfg.rob_entries, isa::MicroOp{});
  f_cls_.assign(cfg.rob_entries, 0);
  f_complete_.assign(cfg.rob_entries, kNeverWake);
  f_ready_at_.assign(cfg.rob_entries, 0);
  f_wait_count_.assign(cfg.rob_entries, 0);
  f_waiter_head_.assign(cfg.rob_entries, kWaiterNil);
  f_waiter_link_[0].assign(cfg.rob_entries, kWaiterNil);
  f_waiter_link_[1].assign(cfg.rob_entries, kWaiterNil);
  f_int_q_.ready.reserve(cfg.int_isq_entries);
  f_fp_q_.ready.reserve(cfg.fp_isq_entries);
  f_lq_q_.ready.reserve(cfg.lq_entries);
  f_sq_q_.ready.reserve(cfg.sq_entries);
  wheel_head_.assign(kWheelSlots, kWheelNil);
  wheel_next_.assign(cfg.rob_entries, kWheelNil);
}

void Core::attach(ThreadContext* thread) {
  assert(thread_ == nullptr && "attach: core already has a thread");
  assert(rob_count_ == 0 && "attach: pipeline not empty");
  thread_ = thread;
  thread_->set_decode_batch(cfg_.fast_engine ? kFastDecodeBatch : 1);
  attach_energy_ = power_.total();
  attach_l2_misses_ = caches_.l2_demand_misses();
  head_seq_ = thread->next_seq();
  last_fetch_line_ = ~0ULL;
  fetch_resume_at_ = 0;
  redirect_pending_ = false;
  quiet_until_ = 0;
  quiet_stall_ = nullptr;
}

ThreadContext* Core::detach() {
  if (thread_ == nullptr) return nullptr;

  // Squash in-flight ops oldest-first and hand them back for replay.
  std::deque<isa::MicroOp> squashed;
  for (std::size_t i = 0; i < rob_count_; ++i) {
    const std::size_t idx = (rob_head_ + i) % cfg_.rob_entries;
    squashed.push_back(cfg_.fast_engine ? f_op_[idx] : rob_[idx].op);
  }
  thread_->unfetch(std::move(squashed));

  rob_head_ = 0;
  rob_count_ = 0;
  int_isq_.clear();
  fp_isq_.clear();
  lq_.clear();
  sq_.clear();
  for (FastQueue* q : {&f_int_q_, &f_fp_q_, &f_lq_q_, &f_sq_q_})
    q->ready.clear();
  wheel_clear();
  std::fill(f_waiter_head_.begin(), f_waiter_head_.end(), kWaiterNil);
  int_regs_.clear();
  fp_regs_.clear();
  int_isq_slots_.clear();
  fp_isq_slots_.clear();
  lq_slots_.clear();
  sq_slots_.clear();
  exec_.reset_occupancy();
  branch_port_free_ = 0;
  redirect_pending_ = false;
  fetch_resume_at_ = 0;
  quiet_until_ = 0;
  quiet_stall_ = nullptr;

  thread_->add_energy(energy_since_attach());
  thread_->add_l2_misses(l2_misses_since_attach());
  ThreadContext* out = thread_;
  thread_ = nullptr;
  return out;
}

void Core::reconfigure(const CoreConfig& cfg) {
  if (thread_ != nullptr)
    throw std::logic_error("Core::reconfigure: detach the thread first");
  std::string why;
  if (!cfg.validate(&why))
    throw std::invalid_argument("Core::reconfigure: " + why);
  if (cfg.clock_divider != cfg_.clock_divider)
    throw std::invalid_argument(
        "Core::reconfigure: changing the operating point is not supported "
        "(the cache hierarchy's latencies are fixed at construction)");

  cfg_ = stretch_to_global_clock(cfg);
  exec_ = uarch::ExecUnits(cfg_.exec);
  // Price pending events while the outgoing model's values are still live —
  // energy_model_ is rebuilt in place below.
  power_.settle();
  energy_model_ = power::EnergyModel(
      cfg_.structure_sizes(),
      cfg_.energy_params.scaled_for_dvfs(cfg_.clock_divider));
  power_.rebind_model(energy_model_);

  rob_.assign(cfg.rob_entries, RobEntry{});
  f_op_.assign(cfg.rob_entries, isa::MicroOp{});
  f_cls_.assign(cfg.rob_entries, 0);
  f_complete_.assign(cfg.rob_entries, kNeverWake);
  rob_head_ = 0;
  rob_count_ = 0;
  quiet_until_ = 0;
  quiet_stall_ = nullptr;
  f_ready_at_.assign(cfg.rob_entries, 0);
  f_wait_count_.assign(cfg.rob_entries, 0);
  f_waiter_head_.assign(cfg.rob_entries, kWaiterNil);
  f_waiter_link_[0].assign(cfg.rob_entries, kWaiterNil);
  f_waiter_link_[1].assign(cfg.rob_entries, kWaiterNil);
  for (FastQueue* q : {&f_int_q_, &f_fp_q_, &f_lq_q_, &f_sq_q_})
    q->ready.clear();
  wheel_clear();
  wheel_next_.assign(cfg.rob_entries, kWheelNil);
  int_regs_.reset_capacity(cfg.int_rename_regs);
  fp_regs_.reset_capacity(cfg.fp_rename_regs);
  int_isq_slots_.reset_capacity(cfg.int_isq_entries);
  fp_isq_slots_.reset_capacity(cfg.fp_isq_entries);
  lq_slots_.reset_capacity(cfg.lq_entries);
  sq_slots_.reset_capacity(cfg.sq_entries);
  // Caches and branch-predictor contents persist: morphing rearranges the
  // datapath, not the memory arrays.
}

std::size_t Core::rob_index_of(std::uint64_t seq) const noexcept {
  return (rob_head_ + static_cast<std::size_t>(seq - head_seq_)) % rob_.size();
}

bool Core::dep_ready(std::uint64_t seq, std::uint16_t dist,
                     Cycles now) const noexcept {
  if (dist == 0 || dist > seq) return true;   // no producer
  const std::uint64_t pseq = seq - dist;
  if (pseq < head_seq_) return true;          // producer already retired
  const RobEntry& p = rob_[rob_index_of(pseq)];
  return p.issued && p.complete_at <= now;
}

bool Core::operands_ready(const RobEntry& e, Cycles now) const noexcept {
  return dep_ready(e.seq, e.op.dep1, now) && dep_ready(e.seq, e.op.dep2, now);
}

void Core::charge_mem(uarch::MemLevel level) noexcept {
  power_.on_l1_access();
  if (level != uarch::MemLevel::L1) power_.on_l2_access();
  if (level == uarch::MemLevel::Memory) power_.on_memory_access();
}

void Core::tick(Cycles now) {
  power_.on_cycle();
  if (thread_ == nullptr) return;  // idle: leakage only

  thread_->add_cycles(1);
  // DVFS: a down-clocked core's pipeline only advances on its own clock
  // edges; leakage (already voltage-scaled) accrues every global cycle.
  if (cfg_.clock_divider > 1 && now % cfg_.clock_divider != 0) return;
  int_regs_.tick();
  fp_regs_.tick();
  int_isq_slots_.tick();
  fp_isq_slots_.tick();

  if (cfg_.fast_engine) {
    if (now < quiet_until_) {
      // Provably-idle window (see maybe_quiesce): replay the one stall
      // counter the reference stage walk would bump and return.
      if (quiet_stall_ != nullptr) ++(stalls_.*quiet_stall_);
      return;
    }
    f_action_ = false;
    commit_stage_fast(now);
    if (wheel_pending_ == 0 && wheel_far_.empty())
      wheel_cursor_ = now;  // nothing parked: skip the bucket scan
    else
      wheel_drain(now);
    issue_stage_fast(now);
    fetch_stage_fast(now);
    maybe_quiesce(now);
  } else {
    commit_stage(now);
    issue_stage(now);
    fetch_stage(now);
  }
}

void Core::run_quiet(Cycles now, Cycles n) noexcept {
  assert(cfg_.fast_engine && thread_ != nullptr && now + n <= quiet_until_);
  // Per-cycle effects of the quiet path, folded: leakage and thread cycles
  // accrue every global cycle; pool ticks and the stall-counter bump only
  // happen on this core's own clock edges (tick() returns before them on
  // divided non-edge cycles).
  power_.on_cycles(n);
  thread_->add_cycles(n);
  Cycles edges = n;
  if (cfg_.clock_divider > 1) {
    const Cycles d = cfg_.clock_divider;
    const Cycles first = (now + d - 1) / d * d;  // first edge >= now
    edges = first < now + n ? (now + n - 1 - first) / d + 1 : 0;
  }
  if (edges == 0) return;
  int_regs_.tick(edges);
  fp_regs_.tick(edges);
  int_isq_slots_.tick(edges);
  fp_isq_slots_.tick(edges);
  if (quiet_stall_ != nullptr) stalls_.*quiet_stall_ += edges;
}

void Core::commit_stage(Cycles now) {
  unsigned retired = 0;
  while (rob_count_ > 0 && retired < cfg_.commit_width) {
    RobEntry& head = rob_[rob_head_];
    if (!head.issued || head.complete_at > now) break;

    const isa::InstrClass cls = head.op.cls;
    thread_->committed().add(cls);
    ++committed_ops_;
    power_.on_commit(1);

    // Release renamed destination register.
    if (isa::is_int(cls) || cls == isa::InstrClass::Load)
      int_regs_.release();
    else if (isa::is_fp(cls))
      fp_regs_.release();

    if (cls == isa::InstrClass::Load) {
      lq_slots_.release();
    } else if (cls == isa::InstrClass::Store) {
      // Stores update the data cache at retirement (store-buffer model);
      // latency is off the critical path, energy is not.
      const auto acc = caches_.data_access(head.op.mem_addr, true, now);
      charge_mem(acc.level);
      sq_slots_.release();
    }

    rob_head_ = (rob_head_ + 1) % rob_.size();
    --rob_count_;
    ++head_seq_;
    ++retired;
  }
}

void Core::issue_stage(Cycles now) {
  unsigned budget = cfg_.issue_width;

  // Integer queue: arithmetic via the INT pools, branches via the branch
  // port. Oldest-first.
  for (auto it = int_isq_.begin(); it != int_isq_.end() && budget > 0;) {
    RobEntry& e = rob_[*it];
    if (!operands_ready(e, now)) {
      ++it;
      continue;
    }
    Cycles done = 0;
    if (e.op.cls == isa::InstrClass::Branch) {
      if (branch_port_free_ <= now) {
        branch_port_free_ = now + 1;
        done = now + 1;
      }
    } else {
      done = exec_.try_issue(e.op.cls, now);
    }
    if (done == 0) {
      ++it;  // structural hazard; try younger ops (out-of-order select)
      continue;
    }
    e.issued = true;
    e.complete_at = done;
    power_.on_issue(e.op.cls);
    int_isq_slots_.release();
    it = int_isq_.erase(it);
    --budget;
  }

  // Floating-point queue.
  for (auto it = fp_isq_.begin(); it != fp_isq_.end() && budget > 0;) {
    RobEntry& e = rob_[*it];
    if (!operands_ready(e, now)) {
      ++it;
      continue;
    }
    const Cycles done = exec_.try_issue(e.op.cls, now);
    if (done == 0) {
      ++it;
      continue;
    }
    e.issued = true;
    e.complete_at = done;
    power_.on_issue(e.op.cls);
    fp_isq_slots_.release();
    it = fp_isq_.erase(it);
    --budget;
  }

  // One load per cycle through the load port; the access starts after a
  // 1-cycle AGU stage.
  if (budget > 0) {
    for (auto it = lq_.begin(); it != lq_.end(); ++it) {
      RobEntry& e = rob_[*it];
      if (!operands_ready(e, now)) continue;
      const auto acc = caches_.data_access(e.op.mem_addr, false, now);
      charge_mem(acc.level);
      e.issued = true;
      e.complete_at = now + 1 + acc.latency;
      power_.on_issue(e.op.cls);
      lq_.erase(it);
      --budget;
      break;
    }
  }

  // One store per cycle: address generation only; data is written at commit.
  if (budget > 0) {
    for (auto it = sq_.begin(); it != sq_.end(); ++it) {
      RobEntry& e = rob_[*it];
      if (!operands_ready(e, now)) continue;
      e.issued = true;
      e.complete_at = now + 1;
      power_.on_issue(e.op.cls);
      sq_.erase(it);
      break;
    }
  }
}

void Core::fetch_stage(Cycles now) {
  // Resolve an outstanding mispredict redirect: the front end restarts a
  // fixed penalty after the branch executes.
  if (redirect_pending_) {
    if (redirect_seq_ < head_seq_) {
      // Branch already retired (possible this same cycle); restart now.
      redirect_pending_ = false;
    } else {
      const RobEntry& b = rob_[rob_index_of(redirect_seq_)];
      if (b.issued && b.complete_at <= now) {
        fetch_resume_at_ =
            std::max(fetch_resume_at_, b.complete_at + cfg_.mispredict_penalty);
        redirect_pending_ = false;
      } else {
        ++stalls_.redirect;
        return;
      }
    }
  }
  if (now < fetch_resume_at_) {
    ++stalls_.redirect;
    return;
  }

  for (unsigned i = 0; i < cfg_.fetch_width; ++i) {
    if (rob_count_ == rob_.size()) {
      ++stalls_.rob_full;
      break;
    }
    const isa::MicroOp& op = thread_->peek();

    // Instruction cache: one lookup per new fetch line.
    const std::uint64_t line = op.pc >> kLineShift;
    if (line != last_fetch_line_) {
      const auto acc = caches_.fetch(op.pc, now);
      charge_mem(acc.level);
      last_fetch_line_ = line;
      if (acc.level != uarch::MemLevel::L1) {
        fetch_resume_at_ = now + acc.latency;
        ++stalls_.icache;
        break;
      }
    }

    // Structural resources; check everything before consuming the op.
    const isa::InstrClass cls = op.cls;
    const bool needs_int_reg = isa::is_int(cls) || cls == isa::InstrClass::Load;
    const bool needs_fp_reg = isa::is_fp(cls);
    if (needs_int_reg && int_regs_.available() == 0) {
      ++stalls_.int_reg;
      break;
    }
    if (needs_fp_reg && fp_regs_.available() == 0) {
      ++stalls_.fp_reg;
      break;
    }
    if ((isa::is_int(cls) || cls == isa::InstrClass::Branch) &&
        int_isq_slots_.available() == 0) {
      ++stalls_.int_isq_full;
      break;
    }
    if (isa::is_fp(cls) && fp_isq_slots_.available() == 0) {
      ++stalls_.fp_isq_full;
      break;
    }
    if (cls == isa::InstrClass::Load && lq_slots_.available() == 0) {
      ++stalls_.lsq_full;
      break;
    }
    if (cls == isa::InstrClass::Store && sq_slots_.available() == 0) {
      ++stalls_.lsq_full;
      break;
    }

    // Dispatch.
    const std::size_t idx = (rob_head_ + rob_count_) % rob_.size();
    rob_[idx] = RobEntry{.op = op, .seq = thread_->next_seq(),
                         .complete_at = 0, .issued = false};
    ++rob_count_;
    thread_->advance_seq();
    thread_->pop();

    power_.on_fetch(1);
    power_.on_rename(1);
    power_.on_dispatch(1);
    if (needs_int_reg) int_regs_.acquire();
    if (needs_fp_reg) fp_regs_.acquire();

    bool mispredicted = false;
    switch (cls) {
      case isa::InstrClass::Load:
        lq_slots_.acquire();
        power_.on_lsq_insert();
        lq_.push_back(static_cast<std::uint32_t>(idx));
        break;
      case isa::InstrClass::Store:
        sq_slots_.acquire();
        power_.on_lsq_insert();
        sq_.push_back(static_cast<std::uint32_t>(idx));
        break;
      case isa::InstrClass::Branch:
        power_.on_bpred_lookup();
        mispredicted = bpred_.access(rob_[idx].op.pc, rob_[idx].op.branch_taken);
        int_isq_slots_.acquire();
        int_isq_.push_back(static_cast<std::uint32_t>(idx));
        break;
      default:
        if (isa::is_fp(cls)) {
          fp_isq_slots_.acquire();
          fp_isq_.push_back(static_cast<std::uint32_t>(idx));
        } else {
          int_isq_slots_.acquire();
          int_isq_.push_back(static_cast<std::uint32_t>(idx));
        }
        break;
    }

    if (mispredicted) {
      // No wrong-path modeling: the front end waits for the branch to
      // execute, then pays the redirect penalty.
      redirect_pending_ = true;
      redirect_seq_ = rob_[idx].seq;
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Fast engine. Same architected behavior as the reference stages above —
// every shared-structure side effect (cache lookups, predictor training,
// functional-unit grants, power counts, pool occupancy) happens in the same
// order with the same arguments; only the bookkeeping around them changed.
// The equivalence test (tests/sim/fast_engine_test.cpp) holds both engines
// to bit-identical run results.
// ---------------------------------------------------------------------------

Core::FastQueue& Core::queue_of(isa::InstrClass cls) noexcept {
  static constexpr FastQueue Core::* kQueue[isa::kNumInstrClasses] = {
      &Core::f_int_q_, &Core::f_int_q_, &Core::f_int_q_,  // INT alu/mul/div
      &Core::f_fp_q_,  &Core::f_fp_q_,  &Core::f_fp_q_,   // FP alu/mul/div
      &Core::f_lq_q_,  &Core::f_sq_q_,  &Core::f_int_q_,  // Load/Store/Branch
  };
  return this->*kQueue[static_cast<std::size_t>(cls)];
}

void Core::wake_waiters(std::size_t pidx, Cycles done) {
  // Callers guard on a non-empty chain, so the first entry is real.
  std::uint32_t e = f_waiter_head_[pidx];
  f_waiter_head_[pidx] = kWaiterNil;
  do {
    const std::uint32_t c = e & ~(1u << kWaiterDepBit);
    const std::uint32_t k = e >> kWaiterDepBit;
    e = f_waiter_link_[k][c];
    if (f_ready_at_[c] < done) f_ready_at_[c] = done;
    if (--f_wait_count_[c] == 0) wheel_push(f_ready_at_[c], c);
  } while (e != kWaiterNil);
}

void Core::wheel_push(Cycles t, std::uint32_t idx) {
  // Pushes always happen at the cycle the wheel was last drained to, so
  // t - wheel_cursor_ is the (positive) wake distance. Within the wheel's
  // span a bucket holds only ops waking exactly at its cycle (no aliasing:
  // an alias would need a wake distance > kWheelSlots at push time).
  if (t - wheel_cursor_ > kWheelSlots) {
    wheel_far_.emplace_back(t, idx);
    return;
  }
  const std::size_t b = t & (kWheelSlots - 1);
  wheel_next_[idx] = wheel_head_[b];
  wheel_head_[b] = idx;
  ++wheel_pending_;
}

void Core::wheel_drain(Cycles now) {
  if (wheel_pending_ == 0 && wheel_far_.empty()) {
    wheel_cursor_ = now;
    return;
  }
  for (Cycles c = wheel_cursor_ + 1; c <= now; ++c) {
    if (wheel_pending_ == 0) break;
    const std::size_t b = c & (kWheelSlots - 1);
    std::uint32_t idx = wheel_head_[b];
    if (idx == kWheelNil) continue;
    wheel_head_[b] = kWheelNil;
    do {
      const std::uint32_t next = wheel_next_[idx];
      insert_by_age(queue_of(static_cast<isa::InstrClass>(f_cls_[idx])).ready,
                    idx);
      --wheel_pending_;
      idx = next;
    } while (idx != kWheelNil);
  }
  wheel_cursor_ = now;
  if (!wheel_far_.empty()) {
    // Far entries (wake distance beyond the wheel span at push time) are
    // re-homed once they come into range; due ones go straight to ready.
    // This runs after the bucket scan with the cursor already at `now`, so
    // a re-homed bucket cannot be visited until its exact wake cycle.
    for (std::size_t i = 0; i < wheel_far_.size();) {
      const auto [t, idx] = wheel_far_[i];
      if (t <= now) {
        insert_by_age(queue_of(static_cast<isa::InstrClass>(f_cls_[idx])).ready,
                      idx);
      } else if (t - now <= kWheelSlots) {
        const std::size_t b = t & (kWheelSlots - 1);
        wheel_next_[idx] = wheel_head_[b];
        wheel_head_[b] = idx;
        ++wheel_pending_;
      } else {
        ++i;
        continue;
      }
      wheel_far_[i] = wheel_far_.back();
      wheel_far_.pop_back();
    }
  }
}

void Core::wheel_clear() noexcept {
  if (wheel_pending_ != 0)
    std::fill(wheel_head_.begin(), wheel_head_.end(), kWheelNil);
  wheel_far_.clear();
  wheel_pending_ = 0;
  wheel_cursor_ = 0;
}

void Core::insert_by_age(std::vector<std::uint32_t>& ready,
                         std::uint32_t idx) {
  // Ring distance from the current head orders any two in-flight slots by
  // age; ready lists only ever hold in-flight slots, so the order is
  // stable as the head advances.
  const auto age = [this](std::uint32_t i) {
    const std::size_t d = i >= rob_head_
                              ? i - rob_head_
                              : i + cfg_.rob_entries - rob_head_;
    return d;
  };
  const std::size_t a = age(idx);
  auto it = ready.end();
  while (it != ready.begin() && age(*(it - 1)) > a) --it;
  ready.insert(it, idx);
}

void Core::commit_stage_fast(Cycles now) {
  std::size_t head = rob_head_;
  const std::size_t entries = cfg_.rob_entries;
  unsigned retired = 0;
  const unsigned width =
      rob_count_ < cfg_.commit_width ? static_cast<unsigned>(rob_count_)
                                     : cfg_.commit_width;
  while (retired < width) {
    const std::size_t idx = head;
    if (f_complete_[idx] > now) break;  // kNeverWake while unissued

    const isa::InstrClass cls = static_cast<isa::InstrClass>(f_cls_[idx]);
    const std::uint8_t fl = kClassFlags[f_cls_[idx]];
    thread_->committed().add(cls);

    if (fl & kNeedsIntReg)
      int_regs_.release();
    else if (fl & kNeedsFpReg)
      fp_regs_.release();

    if (fl & kNeedsLq) {
      lq_slots_.release();
    } else if (fl & kNeedsSq) {
      const auto acc = caches_.data_access(f_op_[idx].mem_addr, true, now);
      charge_mem(acc.level);
      sq_slots_.release();
    }

    head = head + 1 == entries ? 0 : head + 1;
    ++retired;
  }
  if (retired != 0) {
    rob_head_ = head;
    rob_count_ -= retired;
    head_seq_ += retired;
    committed_ops_ += retired;
    power_.on_commit(retired);
    f_action_ = true;
  }
}

void Core::issue_stage_fast(Cycles now) {
  unsigned budget = cfg_.issue_width;

  // wheel_drain already moved every op whose wake time has arrived into
  // the age-ordered ready lists; select oldest-first exactly like the
  // reference scan would: a structural hazard keeps the op (out-of-order
  // select passes it over), an exhausted budget keeps the rest untouched.
  const auto drain = [&](FastQueue& q, bool has_branches,
                         uarch::ResourcePool& slots) {
    if (budget == 0) return;  // nothing can issue; ready ops simply wait
    std::size_t out = 0;
    const std::size_t n = q.ready.size();
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t idx = q.ready[i];
      if (budget == 0) {
        if (out != i) q.ready[out] = idx;
        ++out;
        continue;
      }
      f_action_ = true;  // a ready op issues or contends for a unit
      const auto cls = static_cast<isa::InstrClass>(f_cls_[idx]);
      Cycles done = 0;
      if (has_branches && cls == isa::InstrClass::Branch) {
        if (branch_port_free_ <= now) {
          branch_port_free_ = now + 1;
          done = now + 1;
        }
      } else {
        done = exec_.try_issue(cls, now);
      }
      if (done == 0) {  // structural hazard; out-of-order select skips it
        if (out != i) q.ready[out] = idx;
        ++out;
        continue;
      }
      f_complete_[idx] = done;
      power_.on_issue(cls);
      slots.release();
      --budget;
      if (f_waiter_head_[idx] != kWaiterNil) wake_waiters(idx, done);
    }
    q.ready.resize(out);
  };
  // A queue with nothing ready keeps out of the tick entirely (common for
  // the FP queue on integer code and vice versa).
  if (!f_int_q_.ready.empty())
    drain(f_int_q_, /*has_branches=*/true, int_isq_slots_);
  if (!f_fp_q_.ready.empty())
    drain(f_fp_q_, /*has_branches=*/false, fp_isq_slots_);

  // One load per cycle through the load port (oldest ready), then one
  // store (address generation only).
  if (budget > 0 && !f_lq_q_.ready.empty()) {
    const std::uint32_t idx = f_lq_q_.ready.front();
    f_action_ = true;
    const auto acc = caches_.data_access(f_op_[idx].mem_addr, false, now);
    charge_mem(acc.level);
    const Cycles done = now + 1 + acc.latency;
    f_complete_[idx] = done;
    power_.on_issue(isa::InstrClass::Load);
    f_lq_q_.ready.erase(f_lq_q_.ready.begin());
    --budget;
    if (f_waiter_head_[idx] != kWaiterNil) wake_waiters(idx, done);
  }
  if (budget > 0 && !f_sq_q_.ready.empty()) {
    const std::uint32_t idx = f_sq_q_.ready.front();
    f_action_ = true;
    f_complete_[idx] = now + 1;
    power_.on_issue(isa::InstrClass::Store);
    f_sq_q_.ready.erase(f_sq_q_.ready.begin());
    if (f_waiter_head_[idx] != kWaiterNil) wake_waiters(idx, now + 1);
  }
}

void Core::fetch_stage_fast(Cycles now) {
  if (redirect_pending_) {
    if (redirect_seq_ < head_seq_) {
      redirect_pending_ = false;
      f_action_ = true;
    } else if (f_complete_[redirect_idx_] <= now) {
      fetch_resume_at_ = std::max(fetch_resume_at_,
                                  f_complete_[redirect_idx_] +
                                      cfg_.mispredict_penalty);
      redirect_pending_ = false;
      f_action_ = true;
    } else {
      ++stalls_.redirect;
      return;
    }
  }
  if (now < fetch_resume_at_) {
    ++stalls_.redirect;
    return;
  }

  unsigned dispatched = 0;  // fetch/rename/dispatch counts fold after loop
  for (unsigned i = 0; i < cfg_.fetch_width; ++i) {
    if (rob_count_ == cfg_.rob_entries) {
      ++stalls_.rob_full;
      break;
    }
    const isa::MicroOp& op = thread_->peek();

    const std::uint64_t line = op.pc >> kLineShift;
    if (line != last_fetch_line_) {
      f_action_ = true;  // icache lookup: cache state + power change
      const auto acc = caches_.fetch(op.pc, now);
      charge_mem(acc.level);
      last_fetch_line_ = line;
      if (acc.level != uarch::MemLevel::L1) {
        fetch_resume_at_ = now + acc.latency;
        ++stalls_.icache;
        break;
      }
    }

    const isa::InstrClass cls = op.cls;
    const std::uint8_t fl = kClassFlags[static_cast<std::size_t>(cls)];
    if ((fl & kNeedsIntReg) && int_regs_.available() == 0) {
      ++stalls_.int_reg;
      break;
    }
    if ((fl & kNeedsFpReg) && fp_regs_.available() == 0) {
      ++stalls_.fp_reg;
      break;
    }
    if ((fl & kNeedsIntIsq) && int_isq_slots_.available() == 0) {
      ++stalls_.int_isq_full;
      break;
    }
    if ((fl & kNeedsFpIsq) && fp_isq_slots_.available() == 0) {
      ++stalls_.fp_isq_full;
      break;
    }
    if ((fl & kNeedsLq) && lq_slots_.available() == 0) {
      ++stalls_.lsq_full;
      break;
    }
    if ((fl & kNeedsSq) && sq_slots_.available() == 0) {
      ++stalls_.lsq_full;
      break;
    }

    // Dispatch into the SoA ROB ring.
    f_action_ = true;
    std::size_t idx = rob_head_ + rob_count_;
    if (idx >= cfg_.rob_entries) idx -= cfg_.rob_entries;
    const std::uint64_t seq = thread_->next_seq();
    f_op_[idx] = op;
    f_cls_[idx] = static_cast<std::uint8_t>(cls);
    f_complete_[idx] = kNeverWake;  // doubles as the "unissued" marker
    ++rob_count_;
    ++dispatched;
    thread_->advance_seq();
    thread_->pop();

    if (fl & kNeedsIntReg) int_regs_.acquire();
    if (fl & kNeedsFpReg) fp_regs_.acquire();

    // Resolve producers once, eagerly: an already-issued producer's
    // completion time is final and folds straight into the op's wake
    // time; an unissued one records this op in its waiter chain. A
    // retired producer (seq below head) constrains nothing.
    f_ready_at_[idx] = 0;
    f_wait_count_[idx] = 0;
    const auto link = [&](std::uint16_t dist, std::uint32_t dep_slot) {
      if (dist == 0 || dist > seq) return;      // no register dependence
      const std::uint64_t ps = seq - dist;
      if (ps < head_seq_) return;               // producer already retired
      std::size_t off = rob_head_ + static_cast<std::size_t>(ps - head_seq_);
      if (off >= cfg_.rob_entries) off -= cfg_.rob_entries;
      if (f_complete_[off] != kNeverWake) {
        f_ready_at_[idx] = std::max(f_ready_at_[idx], f_complete_[off]);
      } else {
        f_waiter_link_[dep_slot][idx] = f_waiter_head_[off];
        f_waiter_head_[off] =
            static_cast<std::uint32_t>(idx) | (dep_slot << kWaiterDepBit);
        ++f_wait_count_[idx];
      }
    };
    link(op.dep1, 0);
    link(op.dep2, 1);

    bool mispredicted = false;
    switch (cls) {
      case isa::InstrClass::Load:
        lq_slots_.acquire();
        power_.on_lsq_insert();
        break;
      case isa::InstrClass::Store:
        sq_slots_.acquire();
        power_.on_lsq_insert();
        break;
      case isa::InstrClass::Branch:
        power_.on_bpred_lookup();
        mispredicted = bpred_.access(op.pc, op.branch_taken);
        int_isq_slots_.acquire();
        break;
      default:
        if (fl & kNeedsFpReg)
          fp_isq_slots_.acquire();
        else
          int_isq_slots_.acquire();
        break;
    }
    if (f_wait_count_[idx] == 0) {
      if (f_ready_at_[idx] <= now) {
        // Already wakeable, and as the youngest in-flight op it belongs
        // at the ready tail — skip the timing wheel entirely.
        queue_of(cls).ready.push_back(static_cast<std::uint32_t>(idx));
      } else {
        wheel_push(f_ready_at_[idx], static_cast<std::uint32_t>(idx));
      }
    }

    if (mispredicted) {
      redirect_pending_ = true;
      redirect_seq_ = seq;
      redirect_idx_ = static_cast<std::uint32_t>(idx);
      break;
    }
  }
  if (dispatched != 0) {
    power_.on_fetch(dispatched);
    power_.on_rename(dispatched);
    power_.on_dispatch(dispatched);
  }
}

void Core::maybe_quiesce(Cycles now) noexcept {
  quiet_until_ = 0;
  quiet_stall_ = nullptr;
  if (f_action_) return;

  // This tick committed nothing, woke no queue entry, and fetched nothing.
  // Nothing can change before the earliest latched event: entries whose
  // readiness time is cached cannot wake sooner, entries without a cached
  // time are blocked (transitively) behind an unissued producer that is
  // itself one of these entries, and the front end is gated on a known
  // resume/commit condition. Until then every tick repeats exactly one
  // stall-counter bump, which the quiet path in tick() replays.
  Cycles t = kNeverWake;
  if (rob_count_ > 0) t = std::min(t, f_complete_[rob_head_]);
  // Every due op was drained into a ready list this tick and walked (each
  // walked op sets f_action_), so with f_action_ false the ready lists
  // are empty and the earliest parked wheel entry bounds the next wakeup.
  // Ops still waiting on producers are transitively behind some parked op
  // or the head's latched completion.
  for (const FastQueue* q : {&f_int_q_, &f_fp_q_, &f_lq_q_, &f_sq_q_})
    if (!q->ready.empty()) return;  // not provably idle
  if (wheel_pending_ != 0) {
    // Buckets map 1:1 to cycles within the span (see wheel_push), so the
    // first non-empty bucket past `now` is the exact earliest wake. The
    // scan stops at `t`: a later wake cannot shrink the window, and each
    // bucket probed is a cycle the quiet path then skips.
    const Cycles bound = std::min(t, now + kWheelSlots);
    for (Cycles c = now + 1; c <= bound; ++c) {
      if (wheel_head_[c & (kWheelSlots - 1)] != kWheelNil) {
        t = c;
        break;
      }
    }
  }
  for (const auto& far : wheel_far_) t = std::min(t, far.first);

  if (redirect_pending_) {
    t = std::min(t, f_complete_[redirect_idx_]);
    quiet_stall_ = &StallStats::redirect;
  } else if (now < fetch_resume_at_) {
    t = std::min(t, fetch_resume_at_);
    quiet_stall_ = &StallStats::redirect;
  } else if (rob_count_ == cfg_.rob_entries) {
    quiet_stall_ = &StallStats::rob_full;
  } else {
    // Fetch was blocked by a structural pool; mirror the stage's check
    // order to find the counter it bumps each cycle. The peeked op cannot
    // change during the window (nothing pops the ring while quiet).
    const isa::InstrClass cls = thread_->peek().cls;
    const std::uint8_t fl = kClassFlags[static_cast<std::size_t>(cls)];
    if ((fl & kNeedsIntReg) && int_regs_.available() == 0)
      quiet_stall_ = &StallStats::int_reg;
    else if ((fl & kNeedsFpReg) && fp_regs_.available() == 0)
      quiet_stall_ = &StallStats::fp_reg;
    else if ((fl & kNeedsIntIsq) && int_isq_slots_.available() == 0)
      quiet_stall_ = &StallStats::int_isq_full;
    else if ((fl & kNeedsFpIsq) && fp_isq_slots_.available() == 0)
      quiet_stall_ = &StallStats::fp_isq_full;
    else if ((fl & kNeedsLq) && lq_slots_.available() == 0)
      quiet_stall_ = &StallStats::lsq_full;
    else if ((fl & kNeedsSq) && sq_slots_.available() == 0)
      quiet_stall_ = &StallStats::lsq_full;
    else
      return;  // would have fetched — not provably idle, keep ticking
  }

  if (t == kNeverWake || t <= now + 1) {
    quiet_stall_ = nullptr;
    return;
  }
  quiet_until_ = t;
}

}  // namespace amps::sim
