// OpenSystem: the event-driven open-system layer over MulticoreSystem.
// Threads arrive on a schedule (wl::ArrivalSchedule), wait in per-core FIFO
// run queues (oversubscription: more threads than cores), block on modeled
// I/O, optionally get preempted on a time quantum, and exit when their job
// length commits. Idle cores steal from the longest other queue, keeping
// the system work-conserving. Every transition fires a ThreadLifecycle
// hook (sim/lifecycle.hpp).
//
// Determinism: all event servicing walks threads in admission order and
// cores in index order, so a given (schedule, config) pair replays
// bit-exactly. The degenerate schedule — every thread arrives at cycle 0,
// one per core, no I/O, no quantum — reduces exactly to the closed-system
// attach_threads() occupancy, which is how the harness keeps closed runs
// bit-identical through this path (see DESIGN.md §12).
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "common/types.hpp"
#include "sim/core_config.hpp"
#include "sim/lifecycle.hpp"
#include "sim/multicore.hpp"
#include "sim/thread_context.hpp"

namespace amps::sim {

/// Open-system scheduling policy knobs (the queueing layer, not the
/// NCoreScheduler placement policy — those compose).
struct OpenConfig {
  /// Preemption quantum in cycles; 0 disables time slicing. A running
  /// thread is preempted to the back of its core's queue once its slice
  /// expires *and* another thread is waiting on that queue.
  Cycles quantum = 0;
  /// Core idle cycles charged on every re-dispatch (a thread's very first
  /// dispatch is free — nothing architectural moves). Models the same cold
  /// cost a pairwise swap pays via MulticoreSystem's swap_overhead.
  Cycles dispatch_overhead = 0;
  /// Idle cores steal the front of the longest other run queue.
  bool steal = true;
};

/// Per-thread lifecycle ledger, indexed by admission order.
struct OpenThreadRecord {
  ThreadContext* thread = nullptr;
  Cycles arrival = 0;
  ThreadState state = ThreadState::kPending;
  /// Current core while kRunning; last core while kQueued/kBlocked (resume
  /// prefers it); undefined before the first dispatch.
  std::size_t core = 0;
  bool started = false;          ///< first dispatch happened
  Cycles resume_at = 0;          ///< while kBlocked: runnable again at this cycle
  Cycles state_since = 0;        ///< cycle the current state was entered
  Cycles first_dispatch = 0;
  Cycles exit_cycle = 0;
  Cycles queued_cycles = 0;      ///< total cycles spent runnable-but-waiting
  Cycles blocked_cycles = 0;     ///< total cycles spent in modeled I/O
  std::uint64_t stalls = 0;
  std::uint64_t resumes = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t migrations = 0;  ///< re-dispatches onto a different core
  std::uint64_t preemptions = 0;
};

class OpenSystem {
 public:
  static constexpr Cycles kNoEvent = std::numeric_limits<Cycles>::max();
  static constexpr InstrCount kNoCommitBound =
      std::numeric_limits<InstrCount>::max();

  OpenSystem(std::vector<CoreConfig> configs, Cycles swap_overhead,
             OpenConfig cfg);

  /// Admits a thread arriving at cycle `at`. Must be called in
  /// non-decreasing arrival order, before the first service_events().
  /// `t` must already carry its lifecycle config
  /// (ThreadContext::configure_lifecycle) and outlive this object.
  void admit(ThreadContext* t, Cycles at);

  /// Registers a lifecycle observer (schedulers are observers too:
  /// NCoreScheduler derives ThreadLifecycleListener). Not owned.
  void add_listener(ThreadLifecycleListener* listener);

  /// Services every lifecycle event due at now(), in deterministic order:
  /// arrivals -> exits -> stalls -> resumes -> quantum expiries -> idle
  /// dispatch. Call once before each scheduler decision point; between
  /// calls the underlying system just executes.
  void service_events();

  /// Earliest future cycle at which a lifecycle event can fire (arrival,
  /// I/O resume, or armed quantum expiry); kNoEvent when none is pending.
  /// Commit-triggered events (exit, stall) are bounded separately via
  /// next_commit_event_budget().
  [[nodiscard]] Cycles next_event_at() const noexcept;

  /// Tightest commit budget that cannot skip past an exit or I/O stall of
  /// any attached thread: min over running threads of instructions left
  /// until its job end or next stall point. kNoCommitBound when nothing
  /// binds. In the degenerate closed schedule this equals the closed
  /// engine's per-thread run-length budget, preserving bit-identity.
  [[nodiscard]] InstrCount next_commit_event_budget() const noexcept;

  [[nodiscard]] MulticoreSystem& system() noexcept { return system_; }
  [[nodiscard]] const MulticoreSystem& system() const noexcept {
    return system_;
  }
  [[nodiscard]] Cycles now() const noexcept { return system_.now(); }
  [[nodiscard]] const OpenConfig& config() const noexcept { return cfg_; }

  // --- introspection (invariant tests, metrics) --------------------------
  [[nodiscard]] const std::vector<OpenThreadRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t count(ThreadState state) const noexcept;
  [[nodiscard]] bool all_exited() const noexcept;
  [[nodiscard]] std::size_t queue_depth(std::size_t core) const {
    return queues_[core].size();
  }
  /// Work conservation: no empty, non-migrating core while a runnable
  /// thread waits in a queue that core may serve (its own; any queue when
  /// stealing is on).
  [[nodiscard]] bool work_conserving() const noexcept;

  [[nodiscard]] std::uint64_t total_dispatches() const noexcept {
    return dispatches_;
  }
  [[nodiscard]] std::uint64_t total_migrations() const noexcept {
    return migrations_;
  }
  [[nodiscard]] std::uint64_t total_steals() const noexcept { return steals_; }
  [[nodiscard]] std::uint64_t total_preemptions() const noexcept {
    return preemptions_;
  }

 private:
  void enqueue_shortest(std::size_t rec);
  void enqueue_on(std::size_t core, std::size_t rec);
  void dispatch(std::size_t core, std::size_t rec);
  void fire_start(std::size_t rec, std::size_t core);
  void fire_stall(std::size_t rec, StallReason reason);
  void fire_resume(std::size_t rec);
  void fire_exit(std::size_t rec);
  /// True when record `rec`'s thread is attached and executing on its core
  /// (kRunning and not mid-delayed-dispatch).
  [[nodiscard]] bool attached(const OpenThreadRecord& rec) const noexcept;

  MulticoreSystem system_;
  OpenConfig cfg_;
  std::vector<OpenThreadRecord> records_;   // admission order
  std::size_t arrival_cursor_ = 0;          // first not-yet-arrived record
  std::vector<std::deque<std::size_t>> queues_;  // per-core FIFO of records
  std::vector<Cycles> slice_start_;         // per-core quantum slice anchor
  std::vector<ThreadLifecycleListener*> listeners_;
  std::uint64_t dispatches_ = 0;
  std::uint64_t migrations_ = 0;
  std::uint64_t steals_ = 0;
  std::uint64_t preemptions_ = 0;
};

}  // namespace amps::sim
