// MulticoreSystem: N asymmetric cores running N threads, with *pairwise*
// thread swaps. The paper argues its hardware scheduler "is scalable"
// (§VI-D) because decisions stay local; this system generalizes the
// dual-core machinery so that claim can be exercised: a migration idles
// only the two cores involved while the rest keep executing.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "sim/core.hpp"
#include "sim/core_config.hpp"
#include "sim/thread_context.hpp"

namespace amps::sim {

class MulticoreSystem {
 public:
  MulticoreSystem(std::vector<CoreConfig> configs, Cycles swap_overhead = 100);

  /// Binds thread i to core i. Must be called once; sizes must match.
  void attach_threads(const std::vector<ThreadContext*>& threads);

  /// Requests a pairwise swap between the threads on cores `a` and `b`.
  /// Both pipelines flush; the two cores idle for `swap_overhead` cycles;
  /// all other cores keep running. Ignored when either core is already
  /// migrating or a == b.
  void swap_threads(std::size_t a, std::size_t b);

  /// Advances the whole system one clock cycle.
  void step();

  [[nodiscard]] Cycles now() const noexcept { return now_; }
  [[nodiscard]] std::size_t num_cores() const noexcept { return slots_.size(); }
  [[nodiscard]] std::uint64_t swap_count() const noexcept { return swaps_; }
  [[nodiscard]] Cycles swap_overhead() const noexcept { return swap_overhead_; }

  [[nodiscard]] Core& core(std::size_t i) { return *slots_[i].core; }
  [[nodiscard]] const Core& core(std::size_t i) const {
    return *slots_[i].core;
  }
  /// Thread logically assigned to core i (also during its migration).
  [[nodiscard]] ThreadContext* thread_on(std::size_t i) const noexcept {
    return slots_[i].thread;
  }
  /// True while core i is mid-migration (no thread attached).
  [[nodiscard]] bool migrating(std::size_t i) const noexcept {
    return slots_[i].migrating;
  }

  /// Live cumulative energy of a thread (settled + current attachment).
  [[nodiscard]] Energy live_energy(const ThreadContext& t) const;
  [[nodiscard]] Energy total_energy() const noexcept;

 private:
  struct Slot {
    std::unique_ptr<Core> core;
    ThreadContext* thread = nullptr;
    bool migrating = false;
  };
  struct PendingSwap {
    std::size_t a = 0;
    std::size_t b = 0;
    Cycles resume_at = 0;
    Energy idle_energy_start = 0.0;
  };

  std::vector<Slot> slots_;
  std::vector<PendingSwap> pending_;
  Cycles now_ = 0;
  Cycles swap_overhead_;
  std::uint64_t swaps_ = 0;
};

}  // namespace amps::sim
