// MulticoreSystem: N asymmetric cores running N threads, with *pairwise*
// thread swaps. The paper argues its hardware scheduler "is scalable"
// (§VI-D) because decisions stay local; this system generalizes the
// dual-core machinery so that claim can be exercised: a migration idles
// only the two cores involved while the rest keep executing.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "sim/core.hpp"
#include "sim/core_config.hpp"
#include "sim/thread_context.hpp"

namespace amps::sim {

class MulticoreSystem {
 public:
  MulticoreSystem(std::vector<CoreConfig> configs, Cycles swap_overhead = 100);

  /// Binds thread i to core i. Must be called once; sizes must match.
  void attach_threads(const std::vector<ThreadContext*>& threads);

  /// Requests a pairwise swap between the threads on cores `a` and `b`.
  /// Both pipelines flush; the two cores idle for `swap_overhead` cycles;
  /// all other cores keep running. Ignored when either core is already
  /// migrating, holds no thread (open-system empty slot), or a == b;
  /// throws std::out_of_range for an invalid core index (a scheduler
  /// asking for a core that does not exist is a bug, never a benign
  /// request).
  void swap_threads(std::size_t a, std::size_t b);

  // --- open-system occupancy (used by sim::OpenSystem) -------------------
  /// Places `t` on empty core `core`. With `delay == 0` the thread
  /// attaches immediately (an arrival's very first dispatch models no
  /// migration cost); otherwise the core idles `delay` cycles first — the
  /// one-sided analogue of a pairwise swap, with the idle (leakage) energy
  /// attributed to the incoming thread. Throws std::out_of_range on a bad
  /// index and std::logic_error when the slot is occupied or migrating.
  void dispatch_thread(std::size_t core, ThreadContext* t, Cycles delay);

  /// Removes the thread from core `core` (pipeline flush, energy settled
  /// to the thread), leaving the slot empty. Throws std::logic_error when
  /// the slot is empty or mid-migration.
  void undispatch_thread(std::size_t core);

  /// Advances the whole system one clock cycle.
  void step();

  /// Batched stepping for the harness fast path: advances until `now()`
  /// reaches `until_cycle`, stopping early at the end of the first cycle in
  /// which any thread's committed-instruction count has advanced by at
  /// least `commit_budget` since entry. Always steps at least one cycle
  /// when `until_cycle > now()`. Equivalent to calling step() in a loop —
  /// cycle-for-cycle identical state evolution (mirrors
  /// DualCoreSystem::step_until). Returns cycles stepped.
  Cycles step_until(Cycles until_cycle, InstrCount commit_budget);

  /// Sentinel for next_resume_at() when no migration is pending.
  static constexpr Cycles kNoPendingResume =
      std::numeric_limits<Cycles>::max();

  /// Earliest cycle at which a pending migration (pairwise swap or
  /// delayed dispatch) completes and re-attaches (kNoPendingResume when
  /// none is in flight).
  /// Schedulers that skip migrating cores use this to bound batched
  /// stepping so their first post-resume tick lands on the same cycle a
  /// per-cycle harness would poll.
  [[nodiscard]] Cycles next_resume_at() const noexcept;

  [[nodiscard]] Cycles now() const noexcept { return now_; }
  [[nodiscard]] std::size_t num_cores() const noexcept { return slots_.size(); }
  [[nodiscard]] std::uint64_t swap_count() const noexcept { return swaps_; }
  [[nodiscard]] Cycles swap_overhead() const noexcept { return swap_overhead_; }

  [[nodiscard]] Core& core(std::size_t i) { return *slots_[i].core; }
  [[nodiscard]] const Core& core(std::size_t i) const {
    return *slots_[i].core;
  }
  /// Thread logically assigned to core i (also during its migration).
  [[nodiscard]] ThreadContext* thread_on(std::size_t i) const noexcept {
    return slots_[i].thread;
  }
  /// True while core i is mid-migration (no thread attached).
  [[nodiscard]] bool migrating(std::size_t i) const noexcept {
    return slots_[i].migrating;
  }

  /// Live cumulative energy of a thread (settled + current attachment).
  [[nodiscard]] Energy live_energy(const ThreadContext& t) const;
  [[nodiscard]] Energy total_energy() const noexcept;

 private:
  /// O(1) jump through a span where every core is either detached
  /// (migrating: leakage only) or quiescent. Bounded by `limit` and by the
  /// earliest pending-migration resume (step() must observe that cycle to
  /// re-attach). Returns cycles jumped, 0 when some core has live work.
  Cycles idle_fast_forward(Cycles limit);

  struct Slot {
    std::unique_ptr<Core> core;
    ThreadContext* thread = nullptr;
    bool migrating = false;
  };
  struct PendingSwap {
    std::size_t a = 0;
    std::size_t b = 0;
    Cycles resume_at = 0;
    /// Each core's energy ledger at detach time: the migration idle energy
    /// is attributed per core (INT and FP cores leak differently), to the
    /// thread that resumes on that core.
    Energy idle_start_a = 0.0;
    Energy idle_start_b = 0.0;
  };
  /// A delayed one-sided dispatch (open-system run-queue handoff).
  struct PendingAttach {
    std::size_t core = 0;
    Cycles resume_at = 0;
    Energy idle_start = 0.0;  ///< core energy at dispatch, see PendingSwap
  };

  std::vector<Slot> slots_;
  std::vector<PendingSwap> pending_;
  std::vector<PendingAttach> attaches_;
  std::vector<InstrCount> step_until_base_;  // scratch; avoids per-batch alloc
  Cycles now_ = 0;
  Cycles swap_overhead_;
  std::uint64_t swaps_ = 0;
};

}  // namespace amps::sim
