// Core-morphing scheduler — the authors' prior approach (ref. [5],
// PACT'11) that this paper's swap-only scheme is positioned against
// (§III: morphing "requires special hardware ... to avoid the added
// complexity ... we explore the benefits of only thread swapping").
//
// Behavior:
//  * Baseline mode (INT + FP cores): the Fig. 5 rules drive thread swaps
//    exactly like the proposed scheme. When both threads persistently share
//    one flavor (the same-flavor conflict the swap-only scheme can only
//    mitigate with fairness swaps), the cores *morph*: the INT core absorbs
//    the FP core's strong floating-point datapath, producing one
//    strong-everywhere core and one weak-everywhere core, and the more
//    compute-intensive thread takes the strong core.
//  * Morphed mode: when the threads' flavors diverge again, morph back to
//    the baseline INT/FP pair with affinity-correct assignment. A periodic
//    fairness swap shares the strong core between same-flavor threads.
//
// The price of morphing is modeled faithfully: a reconfiguration overhead
// several times the swap cost, plus a standing leakage premium on the
// morphed configurations (the muxes/crossbars that make morphing possible).
#pragma once

#include <deque>

#include "core/monitor.hpp"
#include "core/scheduler.hpp"
#include "core/swap_rules.hpp"
#include "sim/core_config.hpp"

namespace amps::sched {

struct MorphConfig {
  InstrCount window_size = 1000;
  int history_depth = 5;
  SwapRuleThresholds thresholds;
  /// Reconfiguration cost in cycles (swap overhead is typically ~100).
  Cycles morph_overhead = 500;
  Cycles swap_overhead = 100;  ///< used for plain swaps in baseline mode
  /// Fairness: in morphed mode, exchange the strong-core occupant at this
  /// period (mirrors the swap-only scheme's rule 3).
  Cycles fairness_interval = 150'000;
};

class MorphScheduler final : public Scheduler {
 public:
  explicit MorphScheduler(const MorphConfig& cfg);

  void on_start(sim::DualCoreSystem& system) override;
  void tick(sim::DualCoreSystem& system) override;
  /// Swap/morph votes and the morphed-mode fairness swap are all taken at
  /// window boundaries, so the hint is a pure commit budget.
  [[nodiscard]] DecisionHint next_decision_at(
      const sim::DualCoreSystem& system) const override;

  enum class Mode { Baseline, Morphed };
  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] std::uint64_t morphs() const noexcept { return morphs_; }

 private:
  void evaluate(sim::DualCoreSystem& system);
  void enter_morphed(sim::DualCoreSystem& system);
  void exit_morphed(sim::DualCoreSystem& system);
  [[nodiscard]] PairComposition composition(
      const sim::DualCoreSystem& system) const;

  MorphConfig cfg_;
  WindowMonitor monitors_[2];
  Mode mode_ = Mode::Baseline;
  std::deque<bool> swap_votes_;      // baseline: rule-2 tentative decisions
  std::deque<bool> conflict_votes_;  // baseline: same-flavor conflicts
  std::deque<bool> diverge_votes_;   // morphed: flavors diverged again
  Cycles last_action_ = 0;
  std::uint64_t morphs_ = 0;
};

}  // namespace amps::sched
