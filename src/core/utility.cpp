#include "core/utility.hpp"

namespace amps::sched {

UtilityScheduler::UtilityScheduler(const UtilityConfig& cfg)
    : Scheduler("utility"), cfg_(cfg) {}

void UtilityScheduler::on_start(sim::DualCoreSystem& system) {
  for (std::size_t i = 0; i < 2; ++i) {
    sim::ThreadContext* t = system.thread_on(i);
    IntervalState& st = per_thread_[static_cast<std::size_t>(t->id())];
    st.last_committed = t->committed_total();
    st.last_l2_misses = system.live_l2_misses(*t);
  }
  next_decision_ = system.now() + cfg_.decision_interval;
}

void UtilityScheduler::tick(sim::DualCoreSystem& system) {
  if (system.now() < next_decision_) return;
  next_decision_ += cfg_.decision_interval;
  if (system.swap_in_progress()) return;
  count_decision();

  // Per-interval MPKI of the threads on each core.
  double mpki[2] = {0.0, 0.0};
  bool have_data = true;
  for (std::size_t i = 0; i < 2; ++i) {
    sim::ThreadContext* t = system.thread_on(i);
    IntervalState& st = per_thread_[static_cast<std::size_t>(t->id())];
    const InstrCount committed = t->committed_total() - st.last_committed;
    const std::uint64_t misses =
        system.live_l2_misses(*t) - st.last_l2_misses;
    st.last_committed = t->committed_total();
    st.last_l2_misses = system.live_l2_misses(*t);
    if (committed == 0) {
      have_data = false;
      continue;
    }
    mpki[i] = 1000.0 * static_cast<double>(misses) /
              static_cast<double>(committed);
  }
  if (!have_data) return;

  const std::size_t big = cfg_.big_core_index;
  const std::size_t little = 1 - big;
  // Swap when the little-core thread would use the big core distinctly
  // better than its current occupant, and the condition persists across
  // intervals (a single post-migration cold-cache interval is not enough).
  if (utility(mpki[little]) > utility(mpki[big]) * cfg_.swap_margin) {
    if (++consecutive_hits_ >= cfg_.persistence) {
      do_swap(system);
      consecutive_hits_ = 0;
    }
  } else {
    consecutive_hits_ = 0;
  }
}

}  // namespace amps::sched
