#include "core/hpe.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace amps::sched {

namespace {
// Ratio observations live comfortably within [0.1, 4]; the histogram used
// for the per-cell statistical mode clamps outliers to the edge bins.
constexpr double kRatioLo = 0.1;
constexpr double kRatioHi = 4.0;
constexpr std::size_t kRatioBins = 78;  // 0.05-wide bins

double clamp_ratio(double r) {
  return std::clamp(r, 0.05, 20.0);
}

std::size_t cell_index(int row, int col, int bins) {
  return static_cast<std::size_t>(row) * static_cast<std::size_t>(bins) +
         static_cast<std::size_t>(col);
}
}  // namespace

RatioMatrix::RatioMatrix(int bins_per_axis) : bins_(bins_per_axis) {
  if (bins_per_axis <= 0)
    throw std::invalid_argument("RatioMatrix: bins must be > 0");
  values_.assign(static_cast<std::size_t>(bins_) * static_cast<std::size_t>(bins_), 1.0);
  counts_.assign(static_cast<std::size_t>(bins_) * static_cast<std::size_t>(bins_), 0);
}

int RatioMatrix::bin_of(double pct) const noexcept {
  const double width = 100.0 / bins_;
  int b = static_cast<int>(pct / width);
  return std::clamp(b, 0, bins_ - 1);
}

void RatioMatrix::fit(std::span<const ProfileSample> samples) {
  std::vector<mathx::Histogram> hists(
      static_cast<std::size_t>(bins_) * static_cast<std::size_t>(bins_),
      mathx::Histogram(kRatioLo, kRatioHi, kRatioBins));
  for (const auto& s : samples) {
    const std::size_t idx =
        cell_index(bin_of(s.int_pct), bin_of(s.fp_pct), bins_);
    hists[idx].add(s.ratio);
  }
  for (std::size_t i = 0; i < hists.size(); ++i) {
    counts_[i] = hists[i].count();
    if (counts_[i] > 0) values_[i] = hists[i].mode();
  }
  // Fill never-visited cells from the nearest populated cell (Manhattan
  // distance, deterministic scan order) so predictions are total.
  for (int r = 0; r < bins_; ++r) {
    for (int c = 0; c < bins_; ++c) {
      const std::size_t idx = cell_index(r, c, bins_);
      if (counts_[idx] > 0) continue;
      int best_d = bins_ * 2 + 1;
      double best_v = 1.0;
      for (int rr = 0; rr < bins_; ++rr)
        for (int cc = 0; cc < bins_; ++cc) {
          const std::size_t j = cell_index(rr, cc, bins_);
          if (counts_[j] == 0) continue;
          const int d = std::abs(rr - r) + std::abs(cc - c);
          if (d < best_d) {
            best_d = d;
            best_v = values_[j];
          }
        }
      values_[idx] = best_v;
    }
  }
  fitted_ = true;
}

double RatioMatrix::predict_ratio(double int_pct, double fp_pct) const {
  return clamp_ratio(values_[cell_index(bin_of(int_pct), bin_of(fp_pct), bins_)]);
}

double RatioMatrix::cell(int int_bin, int fp_bin) const {
  return values_.at(cell_index(int_bin, fp_bin, bins_));
}

std::size_t RatioMatrix::cell_count(int int_bin, int fp_bin) const {
  return counts_.at(cell_index(int_bin, fp_bin, bins_));
}

RegressionSurface::RegressionSurface(int degree) : degree_(degree) {
  if (degree <= 0) throw std::invalid_argument("RegressionSurface: degree");
}

void RegressionSurface::fit(std::span<const ProfileSample> samples) {
  if (samples.empty())
    throw std::invalid_argument("RegressionSurface: no samples");
  std::vector<mathx::Sample2D> pts;
  pts.reserve(samples.size());
  for (const auto& s : samples)
    pts.push_back({.x1 = s.int_pct / 100.0, .x2 = s.fp_pct / 100.0,
                   .y = s.ratio});
  fit_ = mathx::fit_poly2(pts, degree_, 1e-6);
  r2_ = mathx::r_squared(fit_, pts);
  fitted_ = true;
}

double RegressionSurface::predict_ratio(double int_pct, double fp_pct) const {
  return clamp_ratio(fit_(int_pct / 100.0, fp_pct / 100.0));
}

HpeScheduler::HpeScheduler(const HpePredictionModel& model,
                           const HpeConfig& cfg)
    : Scheduler(std::string("hpe-") + model.kind()), model_(&model), cfg_(cfg) {}

void HpeScheduler::on_start(sim::DualCoreSystem& system) {
  for (std::size_t i = 0; i < 2; ++i) {
    sim::ThreadContext* t = system.thread_on(i);
    per_thread_[static_cast<std::size_t>(t->id())].last_counts = t->committed();
  }
  next_decision_ = system.now() + cfg_.decision_interval;
}

void HpeScheduler::tick(sim::DualCoreSystem& system) {
  if (system.now() < next_decision_) return;
  next_decision_ += cfg_.decision_interval;
  if (system.swap_in_progress()) return;
  count_decision();

  // Estimated speedup of moving each thread to the *other* core, from the
  // instruction composition observed over the last interval.
  trace::DecisionRecord rec;
  double est[2] = {1.0, 1.0};
  for (std::size_t i = 0; i < 2; ++i) {
    sim::ThreadContext* t = system.thread_on(i);
    IntervalState& st = per_thread_[static_cast<std::size_t>(t->id())];
    const isa::InstrCounts delta = t->committed().since(st.last_counts);
    st.last_counts = t->committed();
    if (delta.total() == 0) continue;  // stalled thread: no information
    rec.int_pct[i] = static_cast<float>(delta.int_pct());
    rec.fp_pct[i] = static_cast<float>(delta.fp_pct());
    const double ratio =
        model_->predict_ratio(delta.int_pct(), delta.fp_pct());
    est[i] = system.core(i).config().kind == CoreKind::Int
                 ? 1.0 / ratio  // INT -> FP move
                 : ratio;       // FP -> INT move
  }

  const double est_weighted_speedup = 0.5 * (est[0] + est[1]);
  rec.estimate = static_cast<float>(est_weighted_speedup);
  if (est_weighted_speedup > cfg_.swap_speedup_threshold) {
    do_swap(system);
    rec.swapped = true;
    rec.reason = trace::Reason::kEstimateSwap;
  } else {
    rec.reason = trace::Reason::kBelowThreshold;
  }
  record_decision(system, rec);
}

HpeModels build_hpe_models(const sim::CoreConfig& int_core,
                           const sim::CoreConfig& fp_core,
                           const wl::BenchmarkCatalog& catalog,
                           const ProfilerConfig& cfg) {
  HpeModels m;
  const Profiler profiler(int_core, fp_core, cfg);
  const auto nine = catalog.representative_nine();
  m.samples = profiler.profile_all(nine);
  m.matrix = std::make_unique<RatioMatrix>(5);
  m.matrix->fit(m.samples);
  m.regression = std::make_unique<RegressionSurface>(2);
  m.regression->fit(m.samples);
  return m;
}

}  // namespace amps::sched
