#include "core/oracle.hpp"

namespace amps::sched {

OracleScheduler::OracleScheduler(const HpePredictionModel& model,
                                 const OracleConfig& cfg)
    : Scheduler("fine-predictor"),
      model_(&model),
      cfg_(cfg),
      monitors_{WindowMonitor(cfg.window_size), WindowMonitor(cfg.window_size)} {}

void OracleScheduler::on_start(sim::DualCoreSystem& system) {
  for (std::size_t i = 0; i < 2; ++i) {
    sim::ThreadContext* t = system.thread_on(i);
    monitors_[static_cast<std::size_t>(t->id())].reset(system, *t);
  }
  last_swap_ = system.now();
  streak_ = 0;
}

DecisionHint OracleScheduler::next_decision_at(
    const sim::DualCoreSystem& system) const {
  const InstrCount budget = commits_until_window_boundary(monitors_, system);
  if (budget == 0) return {system.now() + 1, kUnboundedCommits};
  return {kNoPendingCycle, budget};
}

void OracleScheduler::tick(sim::DualCoreSystem& system) {
  if (system.swap_in_progress()) return;

  bool new_window = false;
  for (std::size_t i = 0; i < 2; ++i) {
    sim::ThreadContext* t = system.thread_on(i);
    if (monitors_[static_cast<std::size_t>(t->id())].poll(system, *t))
      new_window = true;
  }
  if (!new_window) return;
  if (!monitors_[0].has_sample() || !monitors_[1].has_sample()) return;
  if (system.now() - last_swap_ < cfg_.swap_cooldown) return;
  count_decision();

  trace::DecisionRecord rec;
  double est[2] = {1.0, 1.0};
  for (std::size_t i = 0; i < 2; ++i) {
    const sim::ThreadContext* t = system.thread_on(i);
    const WindowSample& s =
        monitors_[static_cast<std::size_t>(t->id())].latest();
    rec.int_pct[i] = static_cast<float>(s.int_pct);
    rec.fp_pct[i] = static_cast<float>(s.fp_pct);
    const double ratio = model_->predict_ratio(s.int_pct, s.fp_pct);
    est[i] = system.core(i).config().kind == CoreKind::Int ? 1.0 / ratio
                                                           : ratio;
  }
  const double est_weighted_speedup = 0.5 * (est[0] + est[1]);
  rec.estimate = static_cast<float>(est_weighted_speedup);
  if (est_weighted_speedup > cfg_.swap_speedup_threshold) {
    if (++streak_ >= cfg_.persistence) {
      streak_ = 0;
      do_swap(system);
      last_swap_ = system.now();
      rec.swapped = true;
      rec.reason = trace::Reason::kEstimateSwap;
    } else {
      rec.reason = trace::Reason::kMajorityPending;
    }
  } else {
    streak_ = 0;
    rec.reason = trace::Reason::kBelowThreshold;
  }
  record_decision(system, rec);
}

}  // namespace amps::sched
