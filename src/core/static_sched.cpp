#include "core/static_sched.hpp"

// Header-only implementation; this TU anchors the vtable.
