#include "core/morphing.hpp"

#include <cassert>

namespace amps::sched {

namespace {

/// Majority over a full history window.
bool majority(const std::deque<bool>& votes, int depth) {
  if (votes.size() < static_cast<std::size_t>(depth)) return false;
  int yes = 0;
  for (bool v : votes) yes += v ? 1 : 0;
  return 2 * yes > depth;
}

void push_bounded(std::deque<bool>* votes, bool value, int depth) {
  votes->push_back(value);
  while (votes->size() > static_cast<std::size_t>(depth)) votes->pop_front();
}

}  // namespace

MorphScheduler::MorphScheduler(const MorphConfig& cfg)
    : Scheduler("morphing"),
      cfg_(cfg),
      monitors_{WindowMonitor(cfg.window_size), WindowMonitor(cfg.window_size)} {
  assert(cfg.window_size > 0 && cfg.history_depth > 0);
}

void MorphScheduler::on_start(sim::DualCoreSystem& system) {
  for (std::size_t i = 0; i < 2; ++i) {
    sim::ThreadContext* t = system.thread_on(i);
    monitors_[static_cast<std::size_t>(t->id())].reset(system, *t);
  }
  last_action_ = system.now();
}

PairComposition MorphScheduler::composition(
    const sim::DualCoreSystem& system) const {
  // In morphed mode core 0 is the strong core; the labeling below maps the
  // *baseline* roles (core 0 = INT chassis, core 1 = FP chassis), which is
  // exactly what the Fig. 5 thresholds were derived against.
  PairComposition c;
  for (std::size_t i = 0; i < 2; ++i) {
    const sim::ThreadContext* t = system.thread_on(i);
    const WindowSample& s =
        monitors_[static_cast<std::size_t>(t->id())].latest();
    if (i == 0) {
      c.int_pct_on_int_core = s.int_pct;
      c.fp_pct_on_int_core = s.fp_pct;
    } else {
      c.int_pct_on_fp_core = s.int_pct;
      c.fp_pct_on_fp_core = s.fp_pct;
    }
  }
  return c;
}

void MorphScheduler::enter_morphed(sim::DualCoreSystem& system) {
  // The more compute-intensive thread takes the strong core (core 0).
  double demand[2];
  for (std::size_t i = 0; i < 2; ++i) {
    const sim::ThreadContext* t = system.thread_on(i);
    const WindowSample& s =
        monitors_[static_cast<std::size_t>(t->id())].latest();
    demand[i] = s.int_pct + s.fp_pct;
  }
  const bool swap = demand[1] > demand[0];
  system.morph_cores(sim::morphed_strong_core_config(),
                     sim::morphed_weak_core_config(), cfg_.morph_overhead,
                     swap);
  mode_ = Mode::Morphed;
  ++morphs_;
  swap_votes_.clear();
  conflict_votes_.clear();
  diverge_votes_.clear();
  last_action_ = system.now();
}

void MorphScheduler::exit_morphed(sim::DualCoreSystem& system) {
  // Back to the INT/FP pair; put the more INT-leaning thread on core 0.
  double int_bias[2];
  for (std::size_t i = 0; i < 2; ++i) {
    const sim::ThreadContext* t = system.thread_on(i);
    const WindowSample& s =
        monitors_[static_cast<std::size_t>(t->id())].latest();
    int_bias[i] = s.int_pct - s.fp_pct;
  }
  const bool swap = int_bias[1] > int_bias[0];
  system.morph_cores(sim::int_core_config(), sim::fp_core_config(),
                     cfg_.morph_overhead, swap);
  mode_ = Mode::Baseline;
  ++morphs_;
  swap_votes_.clear();
  conflict_votes_.clear();
  diverge_votes_.clear();
  last_action_ = system.now();
}

DecisionHint MorphScheduler::next_decision_at(
    const sim::DualCoreSystem& system) const {
  const InstrCount budget = commits_until_window_boundary(monitors_, system);
  if (budget == 0) return {system.now() + 1, kUnboundedCommits};
  return {kNoPendingCycle, budget};
}

void MorphScheduler::tick(sim::DualCoreSystem& system) {
  if (system.swap_in_progress()) return;

  bool new_window = false;
  for (std::size_t i = 0; i < 2; ++i) {
    sim::ThreadContext* t = system.thread_on(i);
    if (monitors_[static_cast<std::size_t>(t->id())].poll(system, *t))
      new_window = true;
  }
  if (!new_window) return;
  if (!monitors_[0].has_sample() || !monitors_[1].has_sample()) return;

  evaluate(system);
}

void MorphScheduler::evaluate(sim::DualCoreSystem& system) {
  count_decision();
  const PairComposition comp = composition(system);

  trace::DecisionRecord rec;
  for (std::size_t i = 0; i < 2; ++i) {
    const sim::ThreadContext* t = system.thread_on(i);
    const WindowSample& s =
        monitors_[static_cast<std::size_t>(t->id())].latest();
    rec.int_pct[i] = static_cast<float>(s.int_pct);
    rec.fp_pct[i] = static_cast<float>(s.fp_pct);
  }
  rec.history = static_cast<std::int16_t>(
      mode_ == Mode::Baseline ? swap_votes_.size() : diverge_votes_.size());

  if (mode_ == Mode::Baseline) {
    push_bounded(&swap_votes_, should_swap(comp, cfg_.thresholds),
                 cfg_.history_depth);
    push_bounded(&conflict_votes_, same_flavor_conflict(comp, cfg_.thresholds),
                 cfg_.history_depth);
    int votes = 0;
    for (bool v : swap_votes_) votes += v ? 1 : 0;
    rec.votes = static_cast<std::int16_t>(votes);

    if (majority(swap_votes_, cfg_.history_depth)) {
      do_swap(system);
      swap_votes_.clear();
      last_action_ = system.now();
      rec.swapped = true;
      rec.reason = trace::Reason::kRuleSwap;
      record_decision(system, rec);
      return;
    }
    if (majority(conflict_votes_, cfg_.history_depth)) {
      enter_morphed(system);
      rec.reason = trace::Reason::kMorphEnter;
      record_decision(system, rec);
      return;
    }
    rec.reason = votes > 0 ? trace::Reason::kMajorityPending
                           : trace::Reason::kNone;
    record_decision(system, rec);
    return;
  }

  // Morphed mode: watch for the flavors to diverge again — the pattern
  // where one thread is INT-heavy while the other is FP-heavy, i.e. the
  // baseline AMP would serve both well simultaneously.
  const bool diverged =
      (comp.int_pct_on_int_core >= cfg_.thresholds.int_surge &&
       comp.fp_pct_on_fp_core >= cfg_.thresholds.fp_surge) ||
      (comp.int_pct_on_fp_core >= cfg_.thresholds.int_surge &&
       comp.fp_pct_on_int_core >= cfg_.thresholds.fp_surge);
  push_bounded(&diverge_votes_, diverged, cfg_.history_depth);
  {
    int votes = 0;
    for (bool v : diverge_votes_) votes += v ? 1 : 0;
    rec.votes = static_cast<std::int16_t>(votes);
  }
  if (majority(diverge_votes_, cfg_.history_depth)) {
    exit_morphed(system);
    rec.reason = trace::Reason::kMorphExit;
    record_decision(system, rec);
    return;
  }

  // Fairness: share the strong core between the same-flavor threads.
  if (system.now() - last_action_ >= cfg_.fairness_interval) {
    do_swap(system);
    last_action_ = system.now();
    rec.swapped = true;
    rec.reason = trace::Reason::kForcedSwap;
    record_decision(system, rec);
    return;
  }
  rec.reason = rec.votes > 0 ? trace::Reason::kMajorityPending
                             : trace::Reason::kNone;
  record_decision(system, rec);
}

}  // namespace amps::sched
