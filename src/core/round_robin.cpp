#include "core/round_robin.hpp"

// Header-only implementation; this TU anchors the vtable.
