#include "core/swap_rules.hpp"

namespace amps::sched {

bool should_swap(const PairComposition& c, const SwapRuleThresholds& t) noexcept {
  const bool int_rule = c.int_pct_on_fp_core >= t.int_surge &&
                        c.int_pct_on_int_core <= t.int_drop;
  const bool fp_rule = c.fp_pct_on_int_core >= t.fp_surge &&
                       c.fp_pct_on_fp_core <= t.fp_drop;
  return int_rule || fp_rule;
}

bool same_flavor_conflict(const PairComposition& c,
                          const SwapRuleThresholds& t) noexcept {
  const bool both_int = c.int_pct_on_fp_core >= t.int_surge &&
                        c.int_pct_on_int_core >= t.int_surge;
  const bool both_fp = c.fp_pct_on_int_core >= t.fp_surge &&
                       c.fp_pct_on_fp_core >= t.fp_surge;
  return both_int || both_fp;
}

}  // namespace amps::sched
