#include "core/scheduler.hpp"

// Interface-only translation unit: keeps the vtable anchored here.
