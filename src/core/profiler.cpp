#include "core/profiler.hpp"

#include <algorithm>

namespace amps::sched {

Profiler::Profiler(sim::CoreConfig int_core, sim::CoreConfig fp_core,
                   const ProfilerConfig& cfg)
    : int_core_(std::move(int_core)), fp_core_(std::move(fp_core)), cfg_(cfg) {}

void Profiler::profile(const wl::BenchmarkSpec& spec,
                       std::vector<ProfileSample>* out) const {
  // Identical instance seed on both cores -> identical instruction streams;
  // interval k on one core covers (approximately) the same program region
  // as interval k on the other, which is how the paper pairs observations.
  const auto on_int = sim::run_solo(int_core_, spec, cfg_.run_length,
                                    cfg_.sample_interval, /*seed=*/0);
  const auto on_fp = sim::run_solo(fp_core_, spec, cfg_.run_length,
                                   cfg_.sample_interval, /*seed=*/0);

  const std::size_t n = std::min(on_int.samples.size(), on_fp.samples.size());
  for (std::size_t k = 0; k < n; ++k) {
    const auto& si = on_int.samples[k];
    const auto& sf = on_fp.samples[k];
    if (si.ipc_per_watt <= 0.0 || sf.ipc_per_watt <= 0.0) continue;
    ProfileSample p;
    p.int_pct = 0.5 * (si.int_pct + sf.int_pct);
    p.fp_pct = 0.5 * (si.fp_pct + sf.fp_pct);
    p.ratio = si.ipc_per_watt / sf.ipc_per_watt;
    out->push_back(p);
  }
}

std::vector<ProfileSample> Profiler::profile_all(
    std::span<const wl::BenchmarkSpec* const> specs) const {
  std::vector<ProfileSample> out;
  for (const wl::BenchmarkSpec* spec : specs) profile(*spec, &out);
  return out;
}

}  // namespace amps::sched
