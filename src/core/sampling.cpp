#include "core/sampling.hpp"

namespace amps::sched {

SamplingScheduler::SamplingScheduler(const SamplingConfig& cfg)
    : Scheduler("sampling"), cfg_(cfg) {}

void SamplingScheduler::on_start(sim::DualCoreSystem& system) {
  state_ = State::Idle;
  state_until_ = system.now() + cfg_.decision_interval;
}

SamplingScheduler::Snapshot SamplingScheduler::snapshot(
    const sim::DualCoreSystem& system) const {
  Snapshot s;
  for (std::size_t i = 0; i < 2; ++i) {
    const sim::ThreadContext* t = system.thread_on(i);
    s.committed += t->committed_total();
    s.energy += system.live_energy(*t);
  }
  return s;
}

double SamplingScheduler::ipw_since(const sim::DualCoreSystem& system,
                                    const Snapshot& from) const {
  const Snapshot now = snapshot(system);
  const Energy de = now.energy - from.energy;
  if (de <= 0.0) return 0.0;
  return static_cast<double>(now.committed - from.committed) / de;
}

void SamplingScheduler::tick(sim::DualCoreSystem& system) {
  if (system.now() < state_until_ || system.swap_in_progress()) return;

  switch (state_) {
    case State::Idle:
      // Decision point: start measuring the incumbent assignment.
      count_decision();
      mark_ = snapshot(system);
      state_ = State::MeasureCurrent;
      state_until_ = system.now() + cfg_.sample_cycles;
      break;

    case State::MeasureCurrent:
      incumbent_ipw_ = ipw_since(system, mark_);
      do_swap(system);
      state_ = State::Warmup;
      state_until_ = system.now() + system.swap_overhead() + cfg_.warmup_cycles;
      break;

    case State::Warmup:
      mark_ = snapshot(system);
      state_ = State::MeasureSwapped;
      state_until_ = system.now() + cfg_.sample_cycles;
      break;

    case State::MeasureSwapped: {
      const double swapped_ipw = ipw_since(system, mark_);
      trace::DecisionRecord rec;
      rec.estimate = static_cast<float>(
          incumbent_ipw_ > 0.0 ? swapped_ipw / incumbent_ipw_ : 0.0);
      if (swapped_ipw > incumbent_ipw_ * cfg_.keep_threshold) {
        ++kept_;  // the swapped configuration wins; stay
        rec.swapped = true;  // the trial swap is being kept
        rec.reason = trace::Reason::kSampleKeep;
      } else {
        do_swap(system);  // revert
        rec.reason = trace::Reason::kSampleRevert;
      }
      record_decision(system, rec);
      state_ = State::Idle;
      state_until_ = system.now() + cfg_.decision_interval;
      break;
    }
  }
}

}  // namespace amps::sched
