// Online-learning predictors (ROADMAP "online-learning predictors and new
// policy families", DESIGN.md §13). The paper's HPE schedulers freeze an
// offline profile of 9 benchmarks (Fig. 3 matrix / Fig. 4 regression); the
// two families here learn the cross-core IPC/Watt model *during* the run
// from the same window-monitor counters, so they keep working on workloads
// the profiling set never saw:
//
//  * OnlineRegressionScheduler — one recursive-least-squares surface per
//    core kind maps instruction composition to IPC/Watt; once both surfaces
//    are warm it swaps exactly like the HPE estimate rule, before that it
//    explores on a fixed deterministic cadence to gather cross-core samples.
//  * BanditSwapScheduler — model-free two-armed bandit over the two thread
//    assignments (swapped / not swapped), rewarded with the measured
//    interval IPC/Watt; epsilon-greedy or UCB1 arm selection.
//  * MulticoreBanditScheduler — the N-core generalization: per-thread arm
//    statistics per core *kind*, pairwise exploit swaps, epsilon-greedy
//    exploration (Navarro-style allocation learned from run feedback).
//
// All three honor the batched-stepping contract: decisions happen only at
// window boundaries (or fixed intervals), and next_decision_at() depends
// only on the window geometry — never on model temperature — so the hints
// stay conservative while the model is cold (DESIGN.md §13.4).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/prng.hpp"
#include "core/global_affinity.hpp"  // NCoreScheduler
#include "core/monitor.hpp"
#include "core/scheduler.hpp"

namespace amps::sched {

/// Recursive least squares over the full bivariate polynomial basis of
/// (x1, x2) (the same basis mathx::fit_poly2 uses), with exponential
/// forgetting. Every update is O(terms^2) with no matrix inversion:
///
///   k = P x / (lambda + x^T P x)
///   w <- w + k (y - w^T x)
///   P <- (P - k x^T P) / lambda
///
/// Guards (tested): non-finite or non-positive targets are rejected,
/// targets are clamped into [min_target, max_target], and an update that
/// would leave any coefficient or covariance entry non-finite is rolled
/// back entirely. predict() always returns a finite value.
struct RlsConfig {
  int degree = 2;
  /// Forgetting factor lambda in (0, 1]: 1 weights all history equally,
  /// smaller values track phase changes faster at the cost of variance.
  double forgetting = 0.98;
  /// Initial covariance diagonal (prior uncertainty of the coefficients).
  double prior_variance = 100.0;
  double min_target = 1e-6;
  double max_target = 1e6;
};

class RlsModel {
 public:
  explicit RlsModel(const RlsConfig& cfg = {});

  /// Folds one observation in; returns false when the sample was rejected
  /// by the guards (state is unchanged in that case).
  bool observe(double x1, double x2, double y);

  /// Current fit evaluated at (x1, x2); finite for any finite input, 0.0
  /// before the first accepted observation.
  [[nodiscard]] double predict(double x1, double x2) const;

  [[nodiscard]] std::uint64_t updates() const noexcept { return updates_; }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }
  [[nodiscard]] const std::vector<double>& coefficients() const noexcept {
    return w_;
  }

 private:
  RlsConfig cfg_;
  std::size_t terms_;
  std::vector<double> w_;  ///< coefficients
  std::vector<double> p_;  ///< covariance, terms_ x terms_ row-major
  std::uint64_t updates_ = 0;
  std::uint64_t rejected_ = 0;
};

/// The online counterpart of the HPE offline models: one RLS surface per
/// core kind predicting IPC/Watt from window composition. Each closed
/// window trains the surface of the core the thread was running on; the
/// cross-core ratio divides the two surface predictions, clamped to the
/// same sane range the offline models use.
struct OnlineModelConfig {
  int degree = 2;
  double forgetting = 0.98;      ///< AMPS_ONLINE_ALPHA
  std::uint64_t warmup = 48;     ///< accepted windows per surface before warm
};

class OnlineIpwModel {
 public:
  explicit OnlineIpwModel(const OnlineModelConfig& cfg = {});

  void observe(CoreKind kind, double int_pct, double fp_pct,
               double ipc_per_watt);

  /// Both surfaces have absorbed at least `warmup` windows.
  [[nodiscard]] bool warm() const noexcept;

  /// Predicted INT-core / FP-core IPC/Watt ratio for the composition —
  /// the same semantics as HpePredictionModel::predict_ratio, clamped to
  /// [0.05, 20] and finite even on a cold or degenerate model.
  [[nodiscard]] double predict_ratio(double int_pct, double fp_pct) const;

  [[nodiscard]] const RlsModel& surface(CoreKind kind) const noexcept {
    return surfaces_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] const OnlineModelConfig& config() const noexcept {
    return cfg_;
  }

 private:
  OnlineModelConfig cfg_;
  std::array<RlsModel, 2> surfaces_;  // indexed by CoreKind
};

/// Window-granular scheduler around OnlineIpwModel. Cold phase: hold the
/// assignment (cold-model records) except for one deterministic exploration
/// swap every `explore_period` decisions, which feeds both surfaces samples
/// from both core kinds. Warm phase: the HPE estimate rule against the
/// learned surfaces (estimate-swap / below-threshold records).
struct OnlineRegressionConfig {
  InstrCount window_size = 1000;
  OnlineModelConfig model;
  double swap_speedup_threshold = 1.05;
  /// Longer than the oracle's: the learned surfaces keep moving, so the
  /// estimate needs room to settle between swaps on top of `persistence`.
  Cycles swap_cooldown = 20'000;
  /// Cold-phase exploration cadence: swap on every Nth decision while the
  /// model is not yet warm (must be >= 1). Each exploration flips the
  /// assignment until the next one, so both surfaces accumulate samples at
  /// both compositions before warm; the period trades coverage against the
  /// cost of running a trap pair inverted.
  std::uint64_t explore_period = 8;
  /// Hysteresis: consecutive over-threshold decisions required before a
  /// warm-phase swap fires. RLS estimates wobble window to window, and
  /// decisions fire on *either* thread's window closure (roughly twice per
  /// window), so this should cover ~persistence/2 windows of wobble or
  /// off-composition phase (e.g. a chunked loop's sync windows).
  std::uint64_t persistence = 8;
};

class OnlineRegressionScheduler final : public Scheduler {
 public:
  explicit OnlineRegressionScheduler(const OnlineRegressionConfig& cfg = {});

  void on_start(sim::DualCoreSystem& system) override;
  void tick(sim::DualCoreSystem& system) override;
  /// Window-boundary driven, exactly like the oracle: the hint depends only
  /// on monitor geometry, so it is conservative at any model temperature.
  [[nodiscard]] DecisionHint next_decision_at(
      const sim::DualCoreSystem& system) const override;

  [[nodiscard]] const OnlineIpwModel& model() const noexcept { return model_; }
  [[nodiscard]] const OnlineRegressionConfig& config() const noexcept {
    return cfg_;
  }

 private:
  OnlineRegressionConfig cfg_;
  OnlineIpwModel model_;
  WindowMonitor monitors_[2];
  Cycles last_swap_ = 0;
  std::uint64_t cold_decisions_ = 0;
  std::uint64_t streak_ = 0;  ///< consecutive over-threshold decisions
};

/// Model-free two-armed bandit over the dual-core thread assignment. Arm 0
/// is the starting assignment, arm 1 the swapped one; every
/// `windows_per_decision` closed windows the scheduler banks the measured
/// interval IPC/Watt as the current arm's reward, then picks the next arm:
/// forced alternation for the first `warmup` decisions, after that
/// epsilon-greedy (or UCB1 when `ucb` is set) on the running means. All
/// randomness comes from a Prng seeded by `seed`, so runs are
/// bit-reproducible per seed.
struct BanditConfig {
  InstrCount window_size = 1000;
  /// Reward horizon: windows between decisions (must be >= 1).
  std::uint64_t windows_per_decision = 8;
  double epsilon = 0.1;          ///< AMPS_ONLINE_EPSILON
  bool ucb = false;              ///< UCB1 instead of epsilon-greedy
  double ucb_c = 0.5;            ///< UCB exploration scale
  std::uint64_t warmup = 8;      ///< forced-alternation decisions
  std::uint64_t seed = 2012;
};

class BanditSwapScheduler final : public Scheduler {
 public:
  explicit BanditSwapScheduler(const BanditConfig& cfg = {});

  void on_start(sim::DualCoreSystem& system) override;
  void tick(sim::DualCoreSystem& system) override;
  [[nodiscard]] DecisionHint next_decision_at(
      const sim::DualCoreSystem& system) const override;

  [[nodiscard]] const BanditConfig& config() const noexcept { return cfg_; }
  /// Mean interval IPC/Watt observed under arm (0 = starting assignment).
  [[nodiscard]] double arm_mean(std::size_t arm) const noexcept {
    return mean_[arm];
  }
  [[nodiscard]] std::uint64_t arm_pulls(std::size_t arm) const noexcept {
    return pulls_[arm];
  }

 private:
  [[nodiscard]] std::size_t choose_next_arm(bool* explored);

  BanditConfig cfg_;
  WindowMonitor monitors_[2];
  amps::Prng prng_;
  std::size_t arm_ = 0;  ///< parity of swaps: which assignment is running
  std::uint64_t windows_since_decision_ = 0;
  double mean_[2] = {0.0, 0.0};
  std::uint64_t pulls_[2] = {0, 0};
  InstrCount last_committed_ = 0;
  Energy last_energy_ = 0.0;
};

/// N-core epsilon-greedy learner: per-thread reward statistics per core
/// *kind* (interval instructions per unit energy while the thread sat on an
/// INT vs FP core). Each decision interval it banks rewards, then either
/// explores (forced rotation during warmup, epsilon-random INT/FP pair
/// after) or exploits by swapping the (INT-core, FP-core) thread pair with
/// the best predicted aggregate gain. Plugs into the same
/// NCoreScheduler/MulticoreRunner paths as the affinity scheme.
struct MulticoreBanditConfig {
  Cycles interval = 18'750;     ///< decision interval (ci: csi / 8)
  double epsilon = 0.1;          ///< AMPS_ONLINE_EPSILON
  std::uint64_t warmup = 6;      ///< forced-rotation decisions
  /// Exploit swaps require predicted_new > margin * predicted_current.
  double margin = 1.02;
  std::uint64_t seed = 2012;
};

class MulticoreBanditScheduler final : public NCoreScheduler {
 public:
  explicit MulticoreBanditScheduler(const MulticoreBanditConfig& cfg = {});

  void on_start(sim::MulticoreSystem& system) override;
  void tick(sim::MulticoreSystem& system) override;
  [[nodiscard]] DecisionHint next_decision_at(
      const sim::MulticoreSystem& /*system*/) const override {
    return {next_, kUnboundedCommits};
  }

  [[nodiscard]] const MulticoreBanditConfig& config() const noexcept {
    return cfg_;
  }

 private:
  struct ArmStats {
    double mean = 0.0;
    std::uint64_t pulls = 0;
  };
  struct ThreadState {
    InstrCount last_committed = 0;
    Energy last_energy = 0.0;
    bool primed = false;
    ArmStats arms[2];  // indexed by CoreKind
  };

  void bank_rewards(const sim::MulticoreSystem& system);
  ThreadState& state_for(int thread_id);

  MulticoreBanditConfig cfg_;
  amps::Prng prng_;
  Cycles next_ = 0;
  std::size_t rotate_pair_ = 0;
  std::vector<ThreadState> threads_;  // indexed by ThreadId
};

}  // namespace amps::sched
