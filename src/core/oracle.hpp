// An idealized fine-grained predictor-based scheduler used as an ablation
// upper reference (not from the paper): it runs the HPE regression
// predictor at the *proposed scheme's* window granularity with no history
// damping. It isolates how much of the proposed scheme's gain comes from
// decision granularity versus from the composition-rule heuristic.
#pragma once

#include "core/hpe.hpp"
#include "core/monitor.hpp"
#include "core/scheduler.hpp"

namespace amps::sched {

struct OracleConfig {
  InstrCount window_size = 1000;
  double swap_speedup_threshold = 1.05;
  /// Minimum cycles between swaps (prevents degenerate thrash when the
  /// predictor sits exactly at the threshold).
  Cycles swap_cooldown = 5'000;
  /// Hysteresis: consecutive over-threshold windows required before a swap
  /// fires. 1 (the default) reproduces the undamped single-window rule;
  /// larger values filter short off-composition phases (e.g. a chunked
  /// loop's synchronization windows) the same way the proposed scheme's
  /// majority vote does.
  std::uint64_t persistence = 1;
};

class OracleScheduler final : public Scheduler {
 public:
  OracleScheduler(const HpePredictionModel& model, const OracleConfig& cfg = {});

  void on_start(sim::DualCoreSystem& system) override;
  void tick(sim::DualCoreSystem& system) override;
  /// Acts only when a monitoring window closes (the cooldown is checked
  /// inside tick and never schedules work between boundaries).
  [[nodiscard]] DecisionHint next_decision_at(
      const sim::DualCoreSystem& system) const override;

 private:
  const HpePredictionModel* model_;
  OracleConfig cfg_;
  WindowMonitor monitors_[2];
  Cycles last_swap_ = 0;
  std::uint64_t streak_ = 0;  ///< consecutive over-threshold windows
};

}  // namespace amps::sched
