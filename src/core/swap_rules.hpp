// The swap-rule engine of the proposed scheme — paper Fig. 5, verbatim:
//
//   2. Do Swap if:
//      i.  (%INT_FP >= 55) and (%INT_INT <= 35)   OR
//      ii. (%FP_INT >= 20) and (%FP_FP <= 7)
//   3. If no_swap for 2 ms, do Swap if:
//      i.  (%INT_FP >= 55) and (%INT_INT >= 55)   OR
//      ii. (%FP_INT >= 20) and (%FP_FP >= 20)
//
// where X_C is the percentage of X-type instructions of the thread
// currently on core C. Rule 2 swaps only when *both* threads benefit;
// rule 3 is the fairness forced swap for same-flavor pairs.
#pragma once

namespace amps::sched {

/// Thresholds (percent). Defaults are the paper's; the ablation bench
/// perturbs them.
struct SwapRuleThresholds {
  double int_surge = 55.0;  ///< %INT on FP core that signals INT affinity
  double int_drop = 35.0;   ///< %INT on INT core low enough to vacate it
  double fp_surge = 20.0;   ///< %FP on INT core that signals FP affinity
  double fp_drop = 7.0;     ///< %FP on FP core low enough to vacate it
};

/// Committed-instruction composition of the two threads, labeled by the
/// core each currently occupies.
struct PairComposition {
  double int_pct_on_fp_core = 0.0;  ///< %INT of the thread on the FP core
  double int_pct_on_int_core = 0.0; ///< %INT of the thread on the INT core
  double fp_pct_on_int_core = 0.0;  ///< %FP of the thread on the INT core
  double fp_pct_on_fp_core = 0.0;   ///< %FP of the thread on the FP core
};

/// Rule 2: mutually beneficial swap.
[[nodiscard]] bool should_swap(const PairComposition& c,
                               const SwapRuleThresholds& t = {}) noexcept;

/// Rule 3 condition: both threads share the same flavor, so fairness
/// requires periodic forced swaps.
[[nodiscard]] bool same_flavor_conflict(const PairComposition& c,
                                        const SwapRuleThresholds& t = {}) noexcept;

}  // namespace amps::sched
