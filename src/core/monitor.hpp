// Online hardware-counter monitor (paper §VI-A): per-thread sampling of
// committed-instruction composition, IPC and energy over fixed
// committed-instruction windows. This is the "low-cost non-invasive
// hardware mechanism" — it reads only counters a real core exposes.
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.hpp"
#include "isa/mix.hpp"
#include "sim/system.hpp"
#include "sim/thread_context.hpp"

namespace amps::sched {

/// One completed monitoring window.
struct WindowSample {
  double int_pct = 0.0;
  double fp_pct = 0.0;
  double ipc = 0.0;
  double ipc_per_watt = 0.0;
  InstrCount committed = 0;  ///< instructions in the window (>= window size)
  Cycles at_cycle = 0;       ///< system time when the window closed
  /// L2 misses per 1000 committed instructions in the window (MPKI) — the
  /// LLC-miss signal the paper's §VII extension adds to the swap rules.
  double l2_mpki = 0.0;
};

/// Watches one thread; poll() returns a sample each time the thread
/// crosses a committed-instruction window boundary.
class WindowMonitor {
 public:
  explicit WindowMonitor(InstrCount window_size) : window_(window_size) {}

  /// Checks the thread's counters; returns a completed window sample when
  /// the boundary has been crossed since the last poll, otherwise nullopt.
  std::optional<WindowSample> poll(const sim::DualCoreSystem& system,
                                   const sim::ThreadContext& thread);

  /// Latest completed sample (empty percentages before the first window).
  [[nodiscard]] const WindowSample& latest() const noexcept { return latest_; }
  [[nodiscard]] bool has_sample() const noexcept { return has_sample_; }

  [[nodiscard]] InstrCount window_size() const noexcept { return window_; }

  /// Committed-instruction count at which the next window closes (valid
  /// once primed; poll()/reset() prime the monitor).
  [[nodiscard]] InstrCount next_boundary() const noexcept {
    return next_boundary_;
  }
  [[nodiscard]] bool primed() const noexcept { return primed_; }

  /// Forgets progress (e.g., after an external reconfiguration).
  void reset(const sim::DualCoreSystem& system,
             const sim::ThreadContext& thread);

 private:
  InstrCount window_;
  InstrCount next_boundary_ = 0;
  isa::InstrCounts last_counts_;
  Cycles last_cycles_ = 0;
  Energy last_energy_ = 0.0;
  std::uint64_t last_l2_misses_ = 0;
  WindowSample latest_;
  bool has_sample_ = false;
  bool primed_ = false;
};

/// Batched-stepping helper shared by the window-driven schedulers:
/// smallest number of instructions any thread can commit before one of the
/// two monitors (indexed by ThreadId) crosses a window boundary. Returns 0
/// when a monitor is unprimed (caller should fall back to per-cycle
/// ticking until the first poll primes it).
InstrCount commits_until_window_boundary(const WindowMonitor monitors[2],
                                         const sim::DualCoreSystem& system);

}  // namespace amps::sched
