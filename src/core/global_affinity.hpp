// N-core generalization of the proposed scheme (§VI-D: the hardware
// approach "is scalable and OS-independent"). Each thread is monitored
// over committed-instruction windows exactly as in the dual-core scheme;
// the scheduler maintains a per-thread *flavor bias* (%INT − %FP, smoothed
// over the history depth) and repairs the worst affinity violation with
// one pairwise swap per decision: the most INT-biased thread sitting on an
// FP core exchanges places with the most FP-biased thread sitting on an
// INT core, provided their bias gap clears a margin. Decisions stay
// pairwise and local — the property that makes the scheme scale.
#pragma once

#include <cstdint>
#include <vector>

#include "common/trace.hpp"
#include "isa/mix.hpp"
#include "sim/multicore.hpp"

namespace amps::sched {

struct GlobalAffinityConfig {
  InstrCount window_size = 1000;
  /// EMA depth: bias is smoothed as a running mean over roughly this many
  /// windows (the dual-core scheme's history vote, in streaming form).
  int history_depth = 5;
  /// Required bias gap (percentage points) between the two candidates
  /// before a swap fires.
  double bias_margin = 25.0;
  /// Global cooldown between swaps (lets migrations settle).
  Cycles swap_cooldown = 10'000;
};

class GlobalAffinityScheduler {
 public:
  explicit GlobalAffinityScheduler(const GlobalAffinityConfig& cfg = {});

  void on_start(sim::MulticoreSystem& system);
  /// Call once per simulated cycle.
  void tick(sim::MulticoreSystem& system);

  [[nodiscard]] std::uint64_t swaps_requested() const noexcept {
    return swaps_;
  }
  [[nodiscard]] std::uint64_t decision_points() const noexcept {
    return decisions_;
  }
  /// Smoothed flavor bias of the thread currently on core i.
  [[nodiscard]] double bias_of_core(std::size_t i) const noexcept {
    return state_[i].bias;
  }

  /// Decision trace (not a Scheduler subclass, so it carries its own).
  [[nodiscard]] const trace::DecisionTrace& decision_trace() const noexcept {
    return trace_;
  }
  [[nodiscard]] trace::DecisionTrace& decision_trace() noexcept {
    return trace_;
  }

 private:
  struct CoreState {
    isa::InstrCounts last_counts;
    InstrCount next_boundary = 0;
    double bias = 0.0;  ///< smoothed %INT - %FP of the occupant thread
    bool primed = false;
  };

  void evaluate(sim::MulticoreSystem& system);

  GlobalAffinityConfig cfg_;
  std::vector<CoreState> state_;  // indexed by core
  Cycles last_swap_ = 0;
  std::uint64_t swaps_ = 0;
  std::uint64_t decisions_ = 0;
  trace::DecisionTrace trace_;
};

/// Round-Robin for N cores: every interval, rotate by swapping one pair
/// (cycling through adjacent pairs) — the obvious fairness baseline.
class MulticoreRoundRobin {
 public:
  explicit MulticoreRoundRobin(Cycles interval) : interval_(interval) {}

  void on_start(sim::MulticoreSystem& system) {
    next_ = system.now() + interval_;
  }
  void tick(sim::MulticoreSystem& system) {
    if (system.now() < next_) return;
    next_ += interval_;
    const std::size_t n = system.num_cores();
    const std::size_t a = pair_ % n;
    const std::size_t b = (pair_ + 1) % n;
    ++pair_;
    system.swap_threads(a, b);
  }

 private:
  Cycles interval_;
  Cycles next_ = 0;
  std::size_t pair_ = 0;
};

}  // namespace amps::sched
