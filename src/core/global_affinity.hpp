// N-core generalization of the proposed scheme (§VI-D: the hardware
// approach "is scalable and OS-independent"). Each thread is monitored
// over committed-instruction windows exactly as in the dual-core scheme;
// the scheduler maintains a per-thread *flavor bias* (%INT − %FP, smoothed
// over the history depth) and repairs the worst affinity violation with
// one pairwise swap per decision: the most INT-biased thread sitting on an
// FP core exchanges places with the most FP-biased thread sitting on an
// INT core, provided their bias gap clears a margin. Decisions stay
// pairwise and local — the property that makes the scheme scale.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/trace.hpp"
#include "core/scheduler.hpp"  // DecisionHint + sentinels
#include "isa/mix.hpp"
#include "sim/lifecycle.hpp"
#include "sim/multicore.hpp"

namespace amps::sched {

/// Interface for N-core schedulers driving a MulticoreSystem — the
/// MulticoreSystem counterpart of sched::Scheduler, with the identical
/// batched-stepping contract: tick() must be a pure no-op except at the
/// scheduler's own decision points, and next_decision_at() conservatively
/// bounds how far the harness may step the system without calling tick().
/// A harness that ignores the hint and ticks every cycle gets bit-identical
/// results.
///
/// Open-system runs additionally deliver thread lifecycle events
/// (start/stall/resume/exit — the Sniper SchedulerDynamic hook shape)
/// through the inherited ThreadLifecycleListener interface; all hooks
/// default to no-ops, and closed-system runs never fire them.
class NCoreScheduler : public sim::ThreadLifecycleListener {
 public:
  explicit NCoreScheduler(std::string name) : name_(std::move(name)) {}
  ~NCoreScheduler() override = default;

  NCoreScheduler(const NCoreScheduler&) = delete;
  NCoreScheduler& operator=(const NCoreScheduler&) = delete;
  NCoreScheduler(NCoreScheduler&&) = default;
  NCoreScheduler& operator=(NCoreScheduler&&) = default;

  /// Called once right after threads are attached, before the first cycle.
  virtual void on_start(sim::MulticoreSystem& /*system*/) {}

  /// Called after a simulated cycle (the batched harness only calls it at
  /// the boundaries promised by next_decision_at()).
  virtual void tick(sim::MulticoreSystem& system) = 0;

  /// Earliest point at which tick() could act, given current state. The
  /// default is maximally conservative (tick every cycle); schedulers
  /// override it to unlock batched stepping.
  [[nodiscard]] virtual DecisionHint next_decision_at(
      const sim::MulticoreSystem& system) const {
    return {system.now() + 1, kUnboundedCommits};
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t swaps_requested() const noexcept {
    return swaps_;
  }
  [[nodiscard]] std::uint64_t decision_points() const noexcept {
    return decisions_;
  }

  /// Per-decision trace: always-on summary (folded into MulticoreRunResult)
  /// plus a ring of full records while tracing is armed (AMPS_TRACE).
  [[nodiscard]] const trace::DecisionTrace& decision_trace() const noexcept {
    return trace_;
  }
  [[nodiscard]] trace::DecisionTrace& decision_trace() noexcept {
    return trace_;
  }

 protected:
  std::uint64_t swaps_ = 0;
  std::uint64_t decisions_ = 0;
  trace::DecisionTrace trace_;

 private:
  std::string name_;
};

struct GlobalAffinityConfig {
  InstrCount window_size = 1000;
  /// EMA depth: bias is smoothed as a running mean over roughly this many
  /// windows (the dual-core scheme's history vote, in streaming form).
  int history_depth = 5;
  /// Required bias gap (percentage points) between the two candidates
  /// before a swap fires.
  double bias_margin = 25.0;
  /// Global cooldown between swaps (lets migrations settle).
  Cycles swap_cooldown = 10'000;
};

class GlobalAffinityScheduler : public NCoreScheduler {
 public:
  explicit GlobalAffinityScheduler(const GlobalAffinityConfig& cfg = {});

  void on_start(sim::MulticoreSystem& system) override;
  void tick(sim::MulticoreSystem& system) override;
  [[nodiscard]] DecisionHint next_decision_at(
      const sim::MulticoreSystem& system) const override;

  /// Smoothed flavor bias of the thread currently on core i.
  [[nodiscard]] double bias_of_core(std::size_t i) const noexcept {
    return state_[i].bias;
  }
  /// Whether core i's window state has taken its first sample yet
  /// (diagnostics; migrating cores stay unprimed until they resume).
  [[nodiscard]] bool core_primed(std::size_t i) const noexcept {
    return state_[i].primed;
  }

 private:
  struct CoreState {
    isa::InstrCounts last_counts;
    InstrCount next_boundary = 0;
    double bias = 0.0;  ///< smoothed %INT - %FP of the occupant thread
    bool primed = false;
    /// The thread this state was primed for. In closed runs occupancy only
    /// changes through our own swaps (state moves along), so this never
    /// mismatches; in open runs the run-queue layer re-assigns cores
    /// between decisions, and a mismatch re-primes from scratch.
    const sim::ThreadContext* occupant = nullptr;
  };

  void evaluate(sim::MulticoreSystem& system);

  GlobalAffinityConfig cfg_;
  std::vector<CoreState> state_;  // indexed by core
  Cycles last_swap_ = 0;
};

/// Round-Robin for N cores: every interval, rotate by swapping one pair
/// (cycling through adjacent pairs) — the obvious fairness baseline.
class MulticoreRoundRobin : public NCoreScheduler {
 public:
  explicit MulticoreRoundRobin(Cycles interval)
      : NCoreScheduler("round-robin-n"), interval_(interval) {}

  void on_start(sim::MulticoreSystem& system) override {
    next_ = system.now() + interval_;
  }
  void tick(sim::MulticoreSystem& system) override;
  [[nodiscard]] DecisionHint next_decision_at(
      const sim::MulticoreSystem& /*system*/) const override {
    return {next_, kUnboundedCommits};
  }

 private:
  Cycles interval_;
  Cycles next_ = 0;
  std::size_t pair_ = 0;
};

/// Static assignment: never swaps. The baseline every N-core comparison
/// ratios against (thread i stays on core i for the whole run).
class MulticoreStaticScheduler : public NCoreScheduler {
 public:
  MulticoreStaticScheduler() : NCoreScheduler("static-n") {}

  void tick(sim::MulticoreSystem& /*system*/) override {}
  [[nodiscard]] DecisionHint next_decision_at(
      const sim::MulticoreSystem& /*system*/) const override {
    return {kNoPendingCycle, kUnboundedCommits};
  }
};

}  // namespace amps::sched
