#include "core/global_affinity.hpp"

namespace amps::sched {

GlobalAffinityScheduler::GlobalAffinityScheduler(
    const GlobalAffinityConfig& cfg)
    : NCoreScheduler("global-affinity"), cfg_(cfg) {}

void GlobalAffinityScheduler::on_start(sim::MulticoreSystem& system) {
  state_.assign(system.num_cores(), CoreState{});
  last_swap_ = system.now();
}

void GlobalAffinityScheduler::tick(sim::MulticoreSystem& system) {
  bool any_window = false;
  const double alpha = 1.0 / static_cast<double>(cfg_.history_depth);

  // Bias state travels with *cores* here, but the thread occupying a core
  // only changes through our own swaps (which move the state along with the
  // occupant). Migrating cores are skipped entirely — their threads are
  // detached and commit nothing, so priming or polling them would sample at
  // the frozen detach-time counters; the first post-resume tick primes and
  // measures instead, and the EMA still converges within a history depth of
  // windows on the new core, mirroring the dual-core scheme's vote refill.
  for (std::size_t i = 0; i < system.num_cores(); ++i) {
    if (system.migrating(i)) continue;
    const sim::ThreadContext* t = system.thread_on(i);
    CoreState& st = state_[i];
    if (t == nullptr) {  // open-system empty slot: drop any stale state
      st = CoreState{};
      continue;
    }
    if (!st.primed || st.occupant != t) {
      st = CoreState{};
      st.occupant = t;
      st.last_counts = t->committed();
      st.next_boundary = t->committed_total() + cfg_.window_size;
      st.primed = true;
      continue;
    }
    if (t->committed_total() < st.next_boundary) continue;
    const isa::InstrCounts delta = t->committed().since(st.last_counts);
    st.last_counts = t->committed();
    st.next_boundary = t->committed_total() + cfg_.window_size;
    const double bias = delta.int_pct() - delta.fp_pct();
    st.bias = (1.0 - alpha) * st.bias + alpha * bias;
    any_window = true;
  }
  if (!any_window) return;
  if (system.now() - last_swap_ < cfg_.swap_cooldown) return;
  evaluate(system);
}

DecisionHint GlobalAffinityScheduler::next_decision_at(
    const sim::MulticoreSystem& system) const {
  // Migration completions are scheduled events: the first tick after a pair
  // re-attaches must land on resume+1, the cycle where a per-cycle harness
  // would first poll the no-longer-migrating cores (which may prime there).
  const Cycles resume = system.next_resume_at();
  const Cycles at_cycle = resume == sim::MulticoreSystem::kNoPendingResume
                              ? kNoPendingCycle
                              : resume + 1;
  InstrCount budget = kUnboundedCommits;
  for (std::size_t i = 0; i < system.num_cores(); ++i) {
    if (system.migrating(i)) continue;  // frozen; tick skips them too
    const sim::ThreadContext* t = system.thread_on(i);
    if (t == nullptr) continue;  // open-system empty slot: nothing to watch
    // Unprimed (or re-assigned by the open run-queue layer): the next tick
    // must prime it.
    if (!state_[i].primed || state_[i].occupant != t)
      return {system.now() + 1, kUnboundedCommits};
    const InstrCount committed = t->committed_total();
    // A boundary already crossed (but not yet polled) must tick now.
    const InstrCount remaining = state_[i].next_boundary > committed
                                     ? state_[i].next_boundary - committed
                                     : 1;
    if (remaining < budget) budget = remaining;
  }
  return {at_cycle, budget};
}

void GlobalAffinityScheduler::evaluate(sim::MulticoreSystem& system) {
  ++decisions_;

  // Worst violation: most INT-biased occupant of an FP core vs most
  // FP-biased occupant of an INT core.
  double best_gap = 0.0;
  std::size_t best_fp_core = 0, best_int_core = 0;
  bool found = false;
  for (std::size_t i = 0; i < system.num_cores(); ++i) {
    if (system.migrating(i) || system.thread_on(i) == nullptr) continue;
    for (std::size_t j = 0; j < system.num_cores(); ++j) {
      if (i == j || system.migrating(j) || system.thread_on(j) == nullptr)
        continue;
      if (system.core(i).config().kind != CoreKind::Fp ||
          system.core(j).config().kind != CoreKind::Int)
        continue;
      const double gap = state_[i].bias - state_[j].bias;
      if (gap > cfg_.bias_margin && gap > best_gap) {
        best_gap = gap;
        best_fp_core = i;
        best_int_core = j;
        found = true;
      }
    }
  }

  trace::DecisionRecord rec;
  rec.cycle = system.now();
  rec.seq = trace_.summary().windows;
  rec.estimate = static_cast<float>(best_gap);
  if (!found) {
    rec.reason = trace::Reason::kNone;
    trace_.record(rec);
    return;
  }
  // Slots 0/1 hold the repaired pair's biases (FP-core occupant first);
  // N-core systems have no fixed two-core composition to report.
  rec.int_pct[0] = static_cast<float>(state_[best_fp_core].bias);
  rec.int_pct[1] = static_cast<float>(state_[best_int_core].bias);
  rec.swapped = true;
  rec.reason = trace::Reason::kAffinitySwap;
  trace_.record(rec);

  system.swap_threads(best_fp_core, best_int_core);
  // The occupants moved; the monitoring state (window counters AND the
  // smoothed bias) tracks the occupant, so it moves with them — otherwise
  // the next window delta would difference two unrelated threads' counters.
  std::swap(state_[best_fp_core], state_[best_int_core]);
  ++swaps_;
  last_swap_ = system.now();
}

void MulticoreRoundRobin::tick(sim::MulticoreSystem& system) {
  if (system.now() < next_) return;
  next_ += interval_;
  ++decisions_;
  const std::size_t n = system.num_cores();
  const std::size_t a = pair_ % n;
  const std::size_t b = (pair_ + 1) % n;
  ++pair_;
  // The system ignores the request while either core is still migrating
  // (only possible when the interval undercuts the swap overhead) or — in
  // open-system runs — holds no thread.
  const bool accepted = !system.migrating(a) && !system.migrating(b) &&
                        system.thread_on(a) != nullptr &&
                        system.thread_on(b) != nullptr;
  system.swap_threads(a, b);
  if (accepted) ++swaps_;

  trace::DecisionRecord rec;
  rec.cycle = system.now();
  rec.seq = trace_.summary().windows;
  rec.swapped = accepted;
  rec.reason = accepted ? trace::Reason::kIntervalSwap : trace::Reason::kNone;
  trace_.record(rec);
}

}  // namespace amps::sched
