#include "core/online_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "mathx/least_squares.hpp"

namespace amps::sched {

namespace {

/// Same sane-range clamp the offline HPE models apply to their ratios.
double clamp_ratio(double r) { return std::clamp(r, 0.05, 20.0); }

bool all_finite(const std::vector<double>& v) {
  for (double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

}  // namespace

// ---- RlsModel ------------------------------------------------------------

RlsModel::RlsModel(const RlsConfig& cfg)
    : cfg_(cfg), terms_(mathx::poly2_num_terms(cfg.degree)) {
  w_.assign(terms_, 0.0);
  p_.assign(terms_ * terms_, 0.0);
  for (std::size_t i = 0; i < terms_; ++i)
    p_[i * terms_ + i] = cfg_.prior_variance;
}

bool RlsModel::observe(double x1, double x2, double y) {
  if (!std::isfinite(x1) || !std::isfinite(x2) || !std::isfinite(y) ||
      y <= 0.0) {
    ++rejected_;
    return false;
  }
  y = std::clamp(y, cfg_.min_target, cfg_.max_target);
  const std::vector<double> x = mathx::poly2_features(x1, x2, cfg_.degree);

  // px = P x; denom = lambda + x^T P x.
  std::vector<double> px(terms_, 0.0);
  for (std::size_t i = 0; i < terms_; ++i)
    for (std::size_t j = 0; j < terms_; ++j)
      px[i] += p_[i * terms_ + j] * x[j];
  double denom = cfg_.forgetting;
  for (std::size_t i = 0; i < terms_; ++i) denom += x[i] * px[i];
  if (!std::isfinite(denom) || denom <= 1e-12) {
    ++rejected_;
    return false;
  }

  double err = y;
  for (std::size_t i = 0; i < terms_; ++i) err -= w_[i] * x[i];

  // Build the candidate state first: a sample that would blow the filter
  // up (non-finite anywhere) is rejected wholesale, leaving w_/p_ intact.
  std::vector<double> w_new = w_;
  for (std::size_t i = 0; i < terms_; ++i)
    w_new[i] += (px[i] / denom) * err;
  std::vector<double> p_new(terms_ * terms_);
  for (std::size_t i = 0; i < terms_; ++i)
    for (std::size_t j = 0; j < terms_; ++j)
      p_new[i * terms_ + j] =
          (p_[i * terms_ + j] - (px[i] / denom) * px[j]) / cfg_.forgetting;
  // Symmetrize: the update is symmetric in exact arithmetic; rounding drift
  // left uncorrected eventually corrupts the gain direction.
  for (std::size_t i = 0; i < terms_; ++i)
    for (std::size_t j = i + 1; j < terms_; ++j) {
      const double m =
          0.5 * (p_new[i * terms_ + j] + p_new[j * terms_ + i]);
      p_new[i * terms_ + j] = m;
      p_new[j * terms_ + i] = m;
    }
  if (!all_finite(w_new) || !all_finite(p_new)) {
    ++rejected_;
    return false;
  }

  w_ = std::move(w_new);
  p_ = std::move(p_new);
  ++updates_;
  return true;
}

double RlsModel::predict(double x1, double x2) const {
  if (updates_ == 0 || !std::isfinite(x1) || !std::isfinite(x2)) return 0.0;
  const std::vector<double> x = mathx::poly2_features(x1, x2, cfg_.degree);
  double y = 0.0;
  for (std::size_t i = 0; i < terms_; ++i) y += w_[i] * x[i];
  return std::isfinite(y) ? y : 0.0;
}

// ---- OnlineIpwModel ------------------------------------------------------

namespace {

RlsConfig rls_config(const OnlineModelConfig& cfg) {
  RlsConfig r;
  r.degree = cfg.degree;
  r.forgetting = cfg.forgetting;
  return r;
}

}  // namespace

OnlineIpwModel::OnlineIpwModel(const OnlineModelConfig& cfg)
    : cfg_(cfg),
      surfaces_{RlsModel(rls_config(cfg)), RlsModel(rls_config(cfg))} {}

void OnlineIpwModel::observe(CoreKind kind, double int_pct, double fp_pct,
                             double ipc_per_watt) {
  // Same x/100 feature scaling the offline RegressionSurface fits on.
  const double x1 = std::clamp(int_pct, 0.0, 100.0) / 100.0;
  const double x2 = std::clamp(fp_pct, 0.0, 100.0) / 100.0;
  surfaces_[static_cast<std::size_t>(kind)].observe(x1, x2, ipc_per_watt);
}

bool OnlineIpwModel::warm() const noexcept {
  return surfaces_[0].updates() >= cfg_.warmup &&
         surfaces_[1].updates() >= cfg_.warmup;
}

double OnlineIpwModel::predict_ratio(double int_pct, double fp_pct) const {
  const double x1 = std::clamp(int_pct, 0.0, 100.0) / 100.0;
  const double x2 = std::clamp(fp_pct, 0.0, 100.0) / 100.0;
  const double on_int =
      surfaces_[static_cast<std::size_t>(CoreKind::Int)].predict(x1, x2);
  const double on_fp =
      surfaces_[static_cast<std::size_t>(CoreKind::Fp)].predict(x1, x2);
  // A cold or degenerate surface (non-positive prediction) yields the
  // neutral ratio: estimate 1.0 on both cores, so nothing swaps on it.
  if (!(on_int > 0.0) || !(on_fp > 0.0)) return 1.0;
  return clamp_ratio(on_int / on_fp);
}

// ---- OnlineRegressionScheduler -------------------------------------------

OnlineRegressionScheduler::OnlineRegressionScheduler(
    const OnlineRegressionConfig& cfg)
    : Scheduler("online-regression"),
      cfg_(cfg),
      model_(cfg.model),
      monitors_{WindowMonitor(cfg.window_size),
                WindowMonitor(cfg.window_size)} {}

void OnlineRegressionScheduler::on_start(sim::DualCoreSystem& system) {
  for (std::size_t i = 0; i < 2; ++i) {
    sim::ThreadContext* t = system.thread_on(i);
    monitors_[static_cast<std::size_t>(t->id())].reset(system, *t);
  }
  last_swap_ = system.now();
  streak_ = 0;
  cold_decisions_ = 0;
  model_ = OnlineIpwModel(cfg_.model);
}

DecisionHint OnlineRegressionScheduler::next_decision_at(
    const sim::DualCoreSystem& system) const {
  const InstrCount budget = commits_until_window_boundary(monitors_, system);
  if (budget == 0) return {system.now() + 1, kUnboundedCommits};
  return {kNoPendingCycle, budget};
}

void OnlineRegressionScheduler::tick(sim::DualCoreSystem& system) {
  if (system.swap_in_progress()) return;

  bool new_window = false;
  for (std::size_t i = 0; i < 2; ++i) {
    sim::ThreadContext* t = system.thread_on(i);
    if (auto s = monitors_[static_cast<std::size_t>(t->id())].poll(system,
                                                                   *t)) {
      new_window = true;
      // Train the surface of the core kind the thread just ran on.
      model_.observe(system.core(i).config().kind, s->int_pct, s->fp_pct,
                     s->ipc_per_watt);
    }
  }
  if (!new_window) return;
  if (!monitors_[0].has_sample() || !monitors_[1].has_sample()) return;
  if (system.now() - last_swap_ < cfg_.swap_cooldown) return;
  count_decision();

  trace::DecisionRecord rec;
  for (std::size_t i = 0; i < 2; ++i) {
    const sim::ThreadContext* t = system.thread_on(i);
    const WindowSample& s =
        monitors_[static_cast<std::size_t>(t->id())].latest();
    rec.int_pct[i] = static_cast<float>(s.int_pct);
    rec.fp_pct[i] = static_cast<float>(s.fp_pct);
  }

  if (!model_.warm()) {
    // Cold phase: the surfaces have only seen the starting assignment.
    // A deterministic swap every explore_period decisions feeds each
    // surface samples from the other core kind; everything else holds.
    ++cold_decisions_;
    if (cfg_.explore_period != 0 &&
        cold_decisions_ % cfg_.explore_period == 0) {
      do_swap(system);
      last_swap_ = system.now();
      rec.swapped = true;
      rec.reason = trace::Reason::kExploreSwap;
    } else {
      rec.reason = trace::Reason::kColdModel;
    }
    record_decision(system, rec);
    return;
  }

  // Warm phase: the HPE estimate rule against the learned surfaces.
  double est[2] = {1.0, 1.0};
  for (std::size_t i = 0; i < 2; ++i) {
    const sim::ThreadContext* t = system.thread_on(i);
    const WindowSample& s =
        monitors_[static_cast<std::size_t>(t->id())].latest();
    const double ratio = model_.predict_ratio(s.int_pct, s.fp_pct);
    est[i] = system.core(i).config().kind == CoreKind::Int ? 1.0 / ratio
                                                           : ratio;
  }
  const double est_weighted_speedup = 0.5 * (est[0] + est[1]);
  rec.estimate = static_cast<float>(est_weighted_speedup);
  if (est_weighted_speedup > cfg_.swap_speedup_threshold) {
    // Hysteresis: the estimate must clear the threshold `persistence`
    // decisions in a row — single crossings of a wobbling RLS estimate
    // would otherwise thrash the assignment.
    if (++streak_ >= cfg_.persistence) {
      streak_ = 0;
      do_swap(system);
      last_swap_ = system.now();
      rec.swapped = true;
      rec.reason = trace::Reason::kEstimateSwap;
    } else {
      rec.reason = trace::Reason::kMajorityPending;
    }
  } else {
    streak_ = 0;
    rec.reason = trace::Reason::kBelowThreshold;
  }
  record_decision(system, rec);
}

// ---- BanditSwapScheduler -------------------------------------------------

BanditSwapScheduler::BanditSwapScheduler(const BanditConfig& cfg)
    : Scheduler("bandit-swap"),
      cfg_(cfg),
      monitors_{WindowMonitor(cfg.window_size),
                WindowMonitor(cfg.window_size)},
      prng_(cfg.seed) {}

void BanditSwapScheduler::on_start(sim::DualCoreSystem& system) {
  InstrCount committed = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    sim::ThreadContext* t = system.thread_on(i);
    monitors_[static_cast<std::size_t>(t->id())].reset(system, *t);
    committed += t->committed_total();
  }
  last_committed_ = committed;
  last_energy_ = system.total_energy();
  prng_.reseed(cfg_.seed);
  arm_ = 0;
  windows_since_decision_ = 0;
  mean_[0] = mean_[1] = 0.0;
  pulls_[0] = pulls_[1] = 0;
}

DecisionHint BanditSwapScheduler::next_decision_at(
    const sim::DualCoreSystem& system) const {
  const InstrCount budget = commits_until_window_boundary(monitors_, system);
  if (budget == 0) return {system.now() + 1, kUnboundedCommits};
  return {kNoPendingCycle, budget};
}

std::size_t BanditSwapScheduler::choose_next_arm(bool* explored) {
  *explored = false;
  // Forced alternation until every decision up to `warmup` sampled both
  // assignments; decision_points() already counts the current decision.
  if (decision_points() <= cfg_.warmup) {
    *explored = true;
    return arm_ ^ 1U;
  }
  if (cfg_.ucb) {
    const double total = static_cast<double>(pulls_[0] + pulls_[1]);
    double score[2];
    for (std::size_t a = 0; a < 2; ++a) {
      score[a] = pulls_[a] == 0
                     ? std::numeric_limits<double>::infinity()
                     : mean_[a] + cfg_.ucb_c *
                                      std::sqrt(2.0 * std::log(total) /
                                                static_cast<double>(
                                                    pulls_[a]));
    }
    if (score[0] == score[1]) return arm_;
    return score[1] > score[0] ? 1 : 0;
  }
  if (prng_.uniform() < cfg_.epsilon) {
    *explored = true;
    return static_cast<std::size_t>(prng_.below(2));
  }
  if (mean_[0] == mean_[1]) return arm_;
  return mean_[1] > mean_[0] ? 1 : 0;
}

void BanditSwapScheduler::tick(sim::DualCoreSystem& system) {
  if (system.swap_in_progress()) return;

  bool new_window = false;
  for (std::size_t i = 0; i < 2; ++i) {
    sim::ThreadContext* t = system.thread_on(i);
    if (monitors_[static_cast<std::size_t>(t->id())].poll(system, *t))
      new_window = true;
  }
  if (!new_window) return;
  if (!monitors_[0].has_sample() || !monitors_[1].has_sample()) return;
  if (++windows_since_decision_ < cfg_.windows_per_decision) return;
  windows_since_decision_ = 0;
  count_decision();

  // Bank the finished interval's measured IPC/Watt as the running arm's
  // reward. Power is energy/cycles, so interval IPC/Watt reduces to
  // instructions per unit energy.
  const InstrCount committed =
      system.thread_on(0)->committed_total() +
      system.thread_on(1)->committed_total();
  const Energy energy = system.total_energy();
  const double dc = static_cast<double>(committed - last_committed_);
  const double de = energy - last_energy_;
  last_committed_ = committed;
  last_energy_ = energy;
  if (de > 1e-12 && std::isfinite(de)) {
    const double reward = dc / de;
    if (std::isfinite(reward)) {
      ++pulls_[arm_];
      mean_[arm_] += (reward - mean_[arm_]) / static_cast<double>(
                                                  pulls_[arm_]);
    }
  }

  trace::DecisionRecord rec;
  for (std::size_t i = 0; i < 2; ++i) {
    const sim::ThreadContext* t = system.thread_on(i);
    const WindowSample& s =
        monitors_[static_cast<std::size_t>(t->id())].latest();
    rec.int_pct[i] = static_cast<float>(s.int_pct);
    rec.fp_pct[i] = static_cast<float>(s.fp_pct);
  }
  rec.estimate = static_cast<float>(mean_[1] - mean_[0]);

  bool explored = false;
  const std::size_t next = choose_next_arm(&explored);
  const bool warming = decision_points() <= cfg_.warmup;
  if (next != arm_) {
    do_swap(system);
    arm_ = next;
    rec.swapped = true;
    rec.reason = explored || warming ? trace::Reason::kExploreSwap
                                     : trace::Reason::kEstimateSwap;
  } else {
    rec.reason = explored || warming ? trace::Reason::kColdModel
                                     : trace::Reason::kBelowThreshold;
  }
  record_decision(system, rec);
}

// ---- MulticoreBanditScheduler --------------------------------------------

MulticoreBanditScheduler::MulticoreBanditScheduler(
    const MulticoreBanditConfig& cfg)
    : NCoreScheduler("bandit-n"), cfg_(cfg), prng_(cfg.seed) {}

void MulticoreBanditScheduler::on_start(sim::MulticoreSystem& system) {
  next_ = system.now() + cfg_.interval;
  rotate_pair_ = 0;
  threads_.clear();
  prng_.reseed(cfg_.seed);
}

MulticoreBanditScheduler::ThreadState& MulticoreBanditScheduler::state_for(
    int thread_id) {
  const auto idx = static_cast<std::size_t>(thread_id);
  if (idx >= threads_.size()) threads_.resize(idx + 1);
  return threads_[idx];
}

void MulticoreBanditScheduler::bank_rewards(
    const sim::MulticoreSystem& system) {
  for (std::size_t i = 0; i < system.num_cores(); ++i) {
    if (system.migrating(i)) continue;
    const sim::ThreadContext* t = system.thread_on(i);
    if (t == nullptr) continue;
    ThreadState& st = state_for(t->id());
    const InstrCount c = t->committed_total();
    const Energy e = t->energy();
    if (st.primed) {
      const double dc = static_cast<double>(c - st.last_committed);
      const double de = e - st.last_energy;
      if (de > 1e-12 && std::isfinite(de)) {
        const double reward = dc / de;
        if (std::isfinite(reward)) {
          ArmStats& arm =
              st.arms[static_cast<std::size_t>(system.core(i).config().kind)];
          ++arm.pulls;
          arm.mean += (reward - arm.mean) / static_cast<double>(arm.pulls);
        }
      }
    }
    st.last_committed = c;
    st.last_energy = e;
    st.primed = true;
  }
}

void MulticoreBanditScheduler::tick(sim::MulticoreSystem& system) {
  if (system.now() < next_) return;
  next_ += cfg_.interval;
  bank_rewards(system);
  ++decisions_;

  trace::DecisionRecord rec;
  rec.cycle = system.now();
  rec.seq = trace_.summary().windows;

  std::vector<std::size_t> int_cores, fp_cores;
  for (std::size_t i = 0; i < system.num_cores(); ++i) {
    if (system.migrating(i) || system.thread_on(i) == nullptr) continue;
    (system.core(i).config().kind == CoreKind::Int ? int_cores : fp_cores)
        .push_back(i);
  }
  if (int_cores.empty() || fp_cores.empty()) {
    rec.reason = trace::Reason::kNone;
    trace_.record(rec);
    return;
  }

  std::size_t a = 0, b = 0;
  bool found = false, explore = false;
  if (decisions_ <= cfg_.warmup) {
    // Forced rotation: every thread collects samples on both core kinds.
    a = int_cores[rotate_pair_ % int_cores.size()];
    b = fp_cores[rotate_pair_ % fp_cores.size()];
    ++rotate_pair_;
    found = true;
    explore = true;
  } else if (prng_.uniform() < cfg_.epsilon) {
    a = int_cores[prng_.below(int_cores.size())];
    b = fp_cores[prng_.below(fp_cores.size())];
    found = true;
    explore = true;
  } else {
    // Exploit: the (INT-core, FP-core) pair whose crossed placement has
    // the best predicted aggregate reward, by the per-thread arm means.
    double best = 0.0;
    for (const std::size_t ai : int_cores) {
      for (const std::size_t bi : fp_cores) {
        const ThreadState& ta = state_for(system.thread_on(ai)->id());
        const ThreadState& tb = state_for(system.thread_on(bi)->id());
        const ArmStats& ta_int =
            ta.arms[static_cast<std::size_t>(CoreKind::Int)];
        const ArmStats& ta_fp =
            ta.arms[static_cast<std::size_t>(CoreKind::Fp)];
        const ArmStats& tb_int =
            tb.arms[static_cast<std::size_t>(CoreKind::Int)];
        const ArmStats& tb_fp =
            tb.arms[static_cast<std::size_t>(CoreKind::Fp)];
        if (ta_int.pulls == 0 || ta_fp.pulls == 0 || tb_int.pulls == 0 ||
            tb_fp.pulls == 0)
          continue;
        const double cur = ta_int.mean + tb_fp.mean;
        const double alt = ta_fp.mean + tb_int.mean;
        if (cur > 0.0 && alt > cfg_.margin * cur && alt - cur > best) {
          best = alt - cur;
          a = ai;
          b = bi;
          found = true;
        }
      }
    }
    rec.estimate = static_cast<float>(best);
  }

  if (!found) {
    rec.reason = trace::Reason::kNone;
    trace_.record(rec);
    return;
  }
  system.swap_threads(a, b);
  ++swaps_;
  rec.swapped = true;
  rec.reason =
      explore ? trace::Reason::kExploreSwap : trace::Reason::kEstimateSwap;
  trace_.record(rec);
}

}  // namespace amps::sched
