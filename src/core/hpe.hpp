// The reference scheme: Hardware-monitoring-and-Prediction-Engine (HPE)
// scheduling, Srinivasan et al. [8], extended per paper §V to
// flavor-asymmetric cores and the IPC/Watt metric. Two prediction models
// are provided, both fit from offline profiling samples:
//
//  * RatioMatrix — 5x5 bins over (%INT, %FP), each holding the statistical
//    mode of the observed IPC/Watt ratios (paper Fig. 3).
//  * RegressionSurface — a non-linear (bivariate polynomial) least-squares
//    fit of the same samples (paper Fig. 4).
//
// The scheduler re-evaluates once per context-switch interval ("2 ms") and
// swaps when the estimated weighted speedup of the swapped configuration
// exceeds 1.05 (paper §V).
#pragma once

#include <memory>
#include <vector>

#include "core/profiler.hpp"
#include "core/scheduler.hpp"
#include "isa/mix.hpp"
#include "mathx/least_squares.hpp"
#include "mathx/stats.hpp"

namespace amps::sched {

/// Predicts the IPC/Watt ratio (INT core / FP core) of a thread from its
/// observed instruction composition.
class HpePredictionModel {
 public:
  virtual ~HpePredictionModel() = default;
  [[nodiscard]] virtual double predict_ratio(double int_pct,
                                             double fp_pct) const = 0;
  [[nodiscard]] virtual const char* kind() const noexcept = 0;
};

/// Paper Fig. 3: binned matrix of ratio modes with nearest-neighbor fill
/// for bins the profiling never visited.
class RatioMatrix final : public HpePredictionModel {
 public:
  explicit RatioMatrix(int bins_per_axis = 5);

  /// Builds the matrix from profiling samples. Bins collect all ratios
  /// observed at that composition; the cell value is the statistical mode
  /// (paper: "replaced the multiple values ... by the statistical mode").
  void fit(std::span<const ProfileSample> samples);

  [[nodiscard]] double predict_ratio(double int_pct,
                                     double fp_pct) const override;
  [[nodiscard]] const char* kind() const noexcept override { return "matrix"; }

  [[nodiscard]] int bins() const noexcept { return bins_; }
  /// Cell value (row = INT bin, col = FP bin); NaN-free after fit().
  [[nodiscard]] double cell(int int_bin, int fp_bin) const;
  /// Number of raw observations that landed in the cell.
  [[nodiscard]] std::size_t cell_count(int int_bin, int fp_bin) const;

 private:
  [[nodiscard]] int bin_of(double pct) const noexcept;

  int bins_;
  std::vector<double> values_;       // bins x bins
  std::vector<std::size_t> counts_;  // raw observations per cell
  bool fitted_ = false;
};

/// Paper Fig. 4: bivariate polynomial regression of the ratio surface.
class RegressionSurface final : public HpePredictionModel {
 public:
  explicit RegressionSurface(int degree = 2);

  void fit(std::span<const ProfileSample> samples);

  [[nodiscard]] double predict_ratio(double int_pct,
                                     double fp_pct) const override;
  [[nodiscard]] const char* kind() const noexcept override {
    return "regression";
  }

  [[nodiscard]] const mathx::Poly2Fit& poly() const noexcept { return fit_; }
  /// Fit quality on the training samples.
  [[nodiscard]] double r2() const noexcept { return r2_; }

 private:
  int degree_;
  mathx::Poly2Fit fit_;
  double r2_ = 0.0;
  bool fitted_ = false;
};

struct HpeConfig {
  Cycles decision_interval = 150'000;  ///< the "2 ms" period
  double swap_speedup_threshold = 1.05;
};

class HpeScheduler final : public Scheduler {
 public:
  /// `model` must outlive the scheduler.
  HpeScheduler(const HpePredictionModel& model, const HpeConfig& cfg = {});

  void on_start(sim::DualCoreSystem& system) override;
  void tick(sim::DualCoreSystem& system) override;
  /// Purely interval-driven: nothing happens before the next "2 ms" tick.
  [[nodiscard]] DecisionHint next_decision_at(
      const sim::DualCoreSystem& /*system*/) const override {
    return {next_decision_, kUnboundedCommits};
  }

  [[nodiscard]] const HpeConfig& config() const noexcept { return cfg_; }

 private:
  struct IntervalState {
    isa::InstrCounts last_counts;
  };

  const HpePredictionModel* model_;
  HpeConfig cfg_;
  Cycles next_decision_ = 0;
  IntervalState per_thread_[2];  // indexed by ThreadId
};

/// Fits both models from the paper's nine representative benchmarks and
/// returns them (used by benches and the harness).
struct HpeModels {
  std::vector<ProfileSample> samples;
  std::unique_ptr<RatioMatrix> matrix;
  std::unique_ptr<RegressionSurface> regression;
};
HpeModels build_hpe_models(const sim::CoreConfig& int_core,
                           const sim::CoreConfig& fp_core,
                           const wl::BenchmarkCatalog& catalog,
                           const ProfilerConfig& cfg);

}  // namespace amps::sched
