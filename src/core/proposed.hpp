// The paper's proposed dynamic thread-scheduling scheme (§VI): fine-grained
// committed-instruction windows, the Fig. 5 instruction-composition swap
// rules, a majority vote over the last `history_depth` windows to ride out
// unstable phases (§VI-B), and a forced fairness swap for same-flavor pairs
// every context-switch interval.
#pragma once

#include <deque>

#include "core/monitor.hpp"
#include "core/scheduler.hpp"
#include "core/swap_rules.hpp"

namespace amps::sched {

struct ProposedConfig {
  InstrCount window_size = 1000;  ///< committed instructions per window
  int history_depth = 5;          ///< windows per majority vote
  Cycles forced_swap_interval = 150'000;  ///< the "2 ms" fairness period
  SwapRuleThresholds thresholds;
  bool enable_forced_swap = true;  ///< ablation knob (rule 3 on/off)
};

class ProposedScheduler final : public Scheduler {
 public:
  explicit ProposedScheduler(const ProposedConfig& cfg);

  void on_start(sim::DualCoreSystem& system) override;
  void tick(sim::DualCoreSystem& system) override;
  /// Decisions (including the forced fairness swap) happen only at window
  /// boundaries, so the hint is a pure commit budget.
  [[nodiscard]] DecisionHint next_decision_at(
      const sim::DualCoreSystem& system) const override;

  [[nodiscard]] const ProposedConfig& config() const noexcept { return cfg_; }
  /// Forced fairness swaps taken (subset of swaps_requested()).
  [[nodiscard]] std::uint64_t forced_swaps() const noexcept { return forced_; }

 private:
  /// Latest window composition labeled by core kind; valid only when both
  /// monitors have produced at least one sample.
  [[nodiscard]] PairComposition composition(
      const sim::DualCoreSystem& system) const;

  void evaluate(sim::DualCoreSystem& system);

  ProposedConfig cfg_;
  WindowMonitor monitors_[2];  // indexed by ThreadId (0/1)
  std::deque<bool> history_;   // tentative decisions, newest at back
  Cycles last_swap_cycle_ = 0;
  std::uint64_t forced_ = 0;
};

}  // namespace amps::sched
