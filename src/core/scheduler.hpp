// Scheduler interface. A scheduler observes the running DualCoreSystem
// (hardware performance counters only — it never looks inside the workload
// models) and requests thread swaps. tick() is a no-op except at the
// scheduler's own decision points (committed-instruction window boundaries
// for the proposed scheme, context-switch intervals for HPE and
// Round-Robin); next_decision_at() tells the harness how far the
// simulation can run uninterrupted, so the hot loop batches cycles between
// decision points instead of paying a virtual tick() per cycle. A harness
// that ignores the hint and ticks every cycle gets bit-identical results.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/trace.hpp"
#include "sim/system.hpp"

namespace amps::sched {

/// Sentinel for "no cycle-scheduled decision pending".
inline constexpr Cycles kNoPendingCycle = std::numeric_limits<Cycles>::max();
/// Sentinel for "no committed-instruction budget" (never triggers).
inline constexpr InstrCount kUnboundedCommits =
    std::numeric_limits<InstrCount>::max();

/// Batched-stepping hint: the harness may advance the system without
/// calling tick() until system.now() reaches `at_cycle` OR either thread
/// commits `commit_budget` further instructions, whichever comes first.
/// Hints must be conservative (never later than the scheduler's true next
/// decision point); stopping early is always safe because tick() is a
/// no-op between decision points.
struct DecisionHint {
  Cycles at_cycle = 0;
  InstrCount commit_budget = kUnboundedCommits;
};

class Scheduler {
 public:
  explicit Scheduler(std::string name) : name_(std::move(name)) {}
  virtual ~Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Called after a simulated cycle. Must be a pure no-op at cycles that
  /// are not decision points (the batched harness only calls it at the
  /// boundaries promised by next_decision_at()).
  virtual void tick(sim::DualCoreSystem& system) = 0;

  /// Called once right after threads are attached, before the first cycle.
  virtual void on_start(sim::DualCoreSystem& /*system*/) {}

  /// Earliest point at which tick() could act, given current state. The
  /// default is maximally conservative (tick every cycle); schedulers
  /// override it to unlock batched stepping.
  [[nodiscard]] virtual DecisionHint next_decision_at(
      const sim::DualCoreSystem& system) const {
    return {system.now() + 1, kUnboundedCommits};
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Number of scheduling evaluations taken so far (paper §VI-D counts
  /// these against the number of actual swaps).
  [[nodiscard]] std::uint64_t decision_points() const noexcept {
    return decisions_;
  }
  [[nodiscard]] std::uint64_t swaps_requested() const noexcept {
    return swaps_;
  }

  /// Cycle timestamps of every swap this scheduler requested — the swap
  /// timeline (diagnostics; printed by the inspect_run example).
  [[nodiscard]] const std::vector<Cycles>& swap_timeline() const noexcept {
    return swap_times_;
  }

  /// Per-decision trace: always-on summary (folded into PairRunResult) plus
  /// a ring of full records while tracing is armed (AMPS_TRACE).
  [[nodiscard]] const trace::DecisionTrace& decision_trace() const noexcept {
    return trace_;
  }
  [[nodiscard]] trace::DecisionTrace& decision_trace() noexcept {
    return trace_;
  }

 protected:
  void count_decision() noexcept { ++decisions_; }
  /// Requests the swap and tracks it.
  void do_swap(sim::DualCoreSystem& system) {
    swap_times_.push_back(system.now());
    system.swap_threads();
    ++swaps_;
  }

  /// Stamps `r` with the decision cycle and sequence number and records it.
  /// Call exactly once per decision point, after the outcome is known (the
  /// swap does not advance the clock, so recording after do_swap() still
  /// timestamps the decision cycle).
  void record_decision(const sim::DualCoreSystem& system,
                       trace::DecisionRecord r) {
    r.cycle = system.now();
    r.seq = trace_.summary().windows;
    trace_.record(r);
  }

 private:
  std::string name_;
  std::uint64_t decisions_ = 0;
  std::uint64_t swaps_ = 0;
  std::vector<Cycles> swap_times_;
  trace::DecisionTrace trace_;
};

}  // namespace amps::sched
