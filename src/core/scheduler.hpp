// Scheduler interface. A scheduler observes the running DualCoreSystem
// (hardware performance counters only — it never looks inside the workload
// models) and requests thread swaps. The harness calls tick() after every
// simulated cycle; implementations keep their own notion of decision
// granularity (per committed-instruction window for the proposed scheme,
// per context-switch interval for HPE and Round-Robin).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/system.hpp"

namespace amps::sched {

class Scheduler {
 public:
  explicit Scheduler(std::string name) : name_(std::move(name)) {}
  virtual ~Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Called once per simulated cycle, after the system stepped.
  virtual void tick(sim::DualCoreSystem& system) = 0;

  /// Called once right after threads are attached, before the first cycle.
  virtual void on_start(sim::DualCoreSystem& /*system*/) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Number of scheduling evaluations taken so far (paper §VI-D counts
  /// these against the number of actual swaps).
  [[nodiscard]] std::uint64_t decision_points() const noexcept {
    return decisions_;
  }
  [[nodiscard]] std::uint64_t swaps_requested() const noexcept {
    return swaps_;
  }

  /// Cycle timestamps of every swap this scheduler requested — the swap
  /// timeline (diagnostics; printed by the inspect_run example).
  [[nodiscard]] const std::vector<Cycles>& swap_timeline() const noexcept {
    return swap_times_;
  }

 protected:
  void count_decision() noexcept { ++decisions_; }
  /// Requests the swap and tracks it.
  void do_swap(sim::DualCoreSystem& system) {
    swap_times_.push_back(system.now());
    system.swap_threads();
    ++swaps_;
  }

 private:
  std::string name_;
  std::uint64_t decisions_ = 0;
  std::uint64_t swaps_ = 0;
  std::vector<Cycles> swap_times_;
};

}  // namespace amps::sched
