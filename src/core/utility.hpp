// Utility-factor scheduling for size-asymmetric (big/little) AMPs, after
// Saez et al. [16] (paper §II): a thread's "utility" of the big core is
// inversely related to how memory-bound it is — a thread stalled on LLC
// misses cannot exploit the big core's wide window, so the big core should
// go to the thread with the lower miss rate. Together with the big/little
// CoreConfigs this demonstrates the paper's §VIII claim that the
// monitoring/swap methodology generalizes beyond INT/FP-flavored cores.
#pragma once

#include "core/scheduler.hpp"
#include "isa/mix.hpp"

namespace amps::sched {

struct UtilityConfig {
  Cycles decision_interval = 150'000;
  /// MPKI-to-utility decay: utility = 1 / (1 + k * MPKI).
  double mpki_weight = 0.08;
  /// The little-core thread's utility must exceed the big-core thread's by
  /// this factor to trigger a swap (hysteresis).
  double swap_margin = 1.10;
  /// The margin must hold for this many consecutive decision intervals
  /// before the swap fires — rejects post-migration cold-cache transients.
  int persistence = 2;
  /// Which core index (0/1) is the big core.
  std::size_t big_core_index = 0;
};

class UtilityScheduler final : public Scheduler {
 public:
  explicit UtilityScheduler(const UtilityConfig& cfg = {});

  void on_start(sim::DualCoreSystem& system) override;
  void tick(sim::DualCoreSystem& system) override;

  [[nodiscard]] const UtilityConfig& config() const noexcept { return cfg_; }

  /// Utility factor for a thread with the given interval MPKI.
  [[nodiscard]] double utility(double mpki) const noexcept {
    return 1.0 / (1.0 + cfg_.mpki_weight * mpki);
  }

 private:
  struct IntervalState {
    InstrCount last_committed = 0;
    std::uint64_t last_l2_misses = 0;
  };

  UtilityConfig cfg_;
  Cycles next_decision_ = 0;
  IntervalState per_thread_[2];  // indexed by ThreadId
  int consecutive_hits_ = 0;     // intervals the swap condition has held
};

}  // namespace amps::sched
