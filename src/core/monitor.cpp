#include "core/monitor.hpp"

#include <algorithm>
#include <cstddef>

namespace amps::sched {

void WindowMonitor::reset(const sim::DualCoreSystem& system,
                          const sim::ThreadContext& thread) {
  last_counts_ = thread.committed();
  last_cycles_ = thread.cycles();
  last_energy_ = system.live_energy(thread);
  last_l2_misses_ = system.live_l2_misses(thread);
  next_boundary_ = thread.committed_total() + window_;
  primed_ = true;
}

std::optional<WindowSample> WindowMonitor::poll(
    const sim::DualCoreSystem& system, const sim::ThreadContext& thread) {
  if (!primed_) reset(system, thread);
  if (thread.committed_total() < next_boundary_) return std::nullopt;

  const isa::InstrCounts delta = thread.committed().since(last_counts_);
  const Cycles dc = thread.cycles() - last_cycles_;
  const Energy energy_now = system.live_energy(thread);
  const Energy de = energy_now - last_energy_;

  const std::uint64_t l2_now = system.live_l2_misses(thread);

  WindowSample s;
  s.int_pct = delta.int_pct();
  s.fp_pct = delta.fp_pct();
  s.committed = delta.total();
  s.ipc = dc ? static_cast<double>(delta.total()) / static_cast<double>(dc)
             : 0.0;
  s.ipc_per_watt = de > 0.0 ? static_cast<double>(delta.total()) / de : 0.0;
  s.at_cycle = system.now();
  s.l2_mpki = delta.total()
                  ? 1000.0 * static_cast<double>(l2_now - last_l2_misses_) /
                        static_cast<double>(delta.total())
                  : 0.0;

  last_counts_ = thread.committed();
  last_cycles_ = thread.cycles();
  last_energy_ = energy_now;
  last_l2_misses_ = l2_now;
  next_boundary_ = thread.committed_total() + window_;
  latest_ = s;
  has_sample_ = true;
  return s;
}

InstrCount commits_until_window_boundary(const WindowMonitor monitors[2],
                                         const sim::DualCoreSystem& system) {
  InstrCount budget = ~InstrCount{0};
  for (std::size_t i = 0; i < 2; ++i) {
    const sim::ThreadContext* t = system.thread_on(i);
    const WindowMonitor& m = monitors[static_cast<std::size_t>(t->id())];
    if (!m.primed()) return 0;
    // A boundary already crossed (but not yet polled) must tick now.
    const InstrCount committed = t->committed_total();
    const InstrCount remaining =
        m.next_boundary() > committed ? m.next_boundary() - committed : 1;
    budget = std::min(budget, remaining);
  }
  return budget;
}

}  // namespace amps::sched
