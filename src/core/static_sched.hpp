// Static scheduling: keep the OS's initial thread-to-core assignment for
// the whole run (the paper's "baseline mode"). Used as the common baseline
// all speedups are computed against.
#pragma once

#include "core/scheduler.hpp"

namespace amps::sched {

class StaticScheduler final : public Scheduler {
 public:
  StaticScheduler() : Scheduler("static") {}
  void tick(sim::DualCoreSystem& /*system*/) override {}
};

}  // namespace amps::sched
