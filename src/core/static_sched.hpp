// Static scheduling: keep the OS's initial thread-to-core assignment for
// the whole run (the paper's "baseline mode"). Used as the common baseline
// all speedups are computed against.
#pragma once

#include "core/scheduler.hpp"

namespace amps::sched {

class StaticScheduler final : public Scheduler {
 public:
  StaticScheduler() : Scheduler("static") {}
  void tick(sim::DualCoreSystem& /*system*/) override {}
  /// Never acts: the harness may run the whole workload in one batch.
  [[nodiscard]] DecisionHint next_decision_at(
      const sim::DualCoreSystem& /*system*/) const override {
    return {kNoPendingCycle, kUnboundedCommits};
  }
};

}  // namespace amps::sched
