// Round-Robin scheduling (paper §VII): unconditionally swap the two
// threads between the INT and FP cores every decision interval. The paper
// evaluates intervals of 1x and 2x the context-switch period and reports
// 1x performs better; both are expressible via `decision_interval`.
#pragma once

#include "core/scheduler.hpp"

namespace amps::sched {

class RoundRobinScheduler final : public Scheduler {
 public:
  explicit RoundRobinScheduler(Cycles decision_interval)
      : Scheduler("round-robin"), interval_(decision_interval) {}

  void on_start(sim::DualCoreSystem& system) override {
    next_ = system.now() + interval_;
  }

  void tick(sim::DualCoreSystem& system) override {
    if (system.now() < next_) return;
    next_ += interval_;
    if (system.swap_in_progress()) return;
    count_decision();
    do_swap(system);
    trace::DecisionRecord rec;
    rec.swapped = true;
    rec.reason = trace::Reason::kIntervalSwap;
    record_decision(system, rec);
  }

  /// Purely interval-driven.
  [[nodiscard]] DecisionHint next_decision_at(
      const sim::DualCoreSystem& /*system*/) const override {
    return {next_, kUnboundedCommits};
  }

  [[nodiscard]] Cycles interval() const noexcept { return interval_; }

 private:
  Cycles interval_;
  Cycles next_ = 0;
};

}  // namespace amps::sched
