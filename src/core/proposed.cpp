#include "core/proposed.hpp"

#include <cassert>

namespace amps::sched {

ProposedScheduler::ProposedScheduler(const ProposedConfig& cfg)
    : Scheduler("proposed"),
      cfg_(cfg),
      monitors_{WindowMonitor(cfg.window_size), WindowMonitor(cfg.window_size)} {
  assert(cfg.window_size > 0 && cfg.history_depth > 0);
}

void ProposedScheduler::on_start(sim::DualCoreSystem& system) {
  for (std::size_t i = 0; i < 2; ++i) {
    sim::ThreadContext* t = system.thread_on(i);
    monitors_[static_cast<std::size_t>(t->id())].reset(system, *t);
  }
  last_swap_cycle_ = system.now();
}

PairComposition ProposedScheduler::composition(
    const sim::DualCoreSystem& system) const {
  PairComposition c;
  for (std::size_t i = 0; i < 2; ++i) {
    const sim::ThreadContext* t = system.thread_on(i);
    const WindowSample& s =
        monitors_[static_cast<std::size_t>(t->id())].latest();
    if (system.core(i).config().kind == CoreKind::Int) {
      c.int_pct_on_int_core = s.int_pct;
      c.fp_pct_on_int_core = s.fp_pct;
    } else {
      c.int_pct_on_fp_core = s.int_pct;
      c.fp_pct_on_fp_core = s.fp_pct;
    }
  }
  return c;
}

DecisionHint ProposedScheduler::next_decision_at(
    const sim::DualCoreSystem& system) const {
  const InstrCount budget = commits_until_window_boundary(monitors_, system);
  if (budget == 0) return {system.now() + 1, kUnboundedCommits};
  return {kNoPendingCycle, budget};
}

void ProposedScheduler::tick(sim::DualCoreSystem& system) {
  if (system.swap_in_progress()) return;

  bool new_window = false;
  for (std::size_t i = 0; i < 2; ++i) {
    sim::ThreadContext* t = system.thread_on(i);
    if (monitors_[static_cast<std::size_t>(t->id())].poll(system, *t))
      new_window = true;
  }
  if (!new_window) return;
  if (!monitors_[0].has_sample() || !monitors_[1].has_sample()) return;

  evaluate(system);
}

void ProposedScheduler::evaluate(sim::DualCoreSystem& system) {
  count_decision();
  const PairComposition comp = composition(system);

  trace::DecisionRecord rec;
  for (std::size_t i = 0; i < 2; ++i) {
    const sim::ThreadContext* t = system.thread_on(i);
    const WindowSample& s =
        monitors_[static_cast<std::size_t>(t->id())].latest();
    rec.int_pct[i] = static_cast<float>(s.int_pct);
    rec.fp_pct[i] = static_cast<float>(s.fp_pct);
  }

  // Tentative decision for this window; majority over the history depth
  // triggers the actual swap (paper §VI-B).
  history_.push_back(should_swap(comp, cfg_.thresholds));
  while (history_.size() > static_cast<std::size_t>(cfg_.history_depth))
    history_.pop_front();

  int votes = 0;
  for (bool v : history_) votes += v ? 1 : 0;
  rec.votes = static_cast<std::int16_t>(votes);
  rec.history = static_cast<std::int16_t>(history_.size());

  if (history_.size() == static_cast<std::size_t>(cfg_.history_depth)) {
    if (2 * votes > cfg_.history_depth) {
      do_swap(system);
      history_.clear();
      last_swap_cycle_ = system.now();
      rec.swapped = true;
      rec.reason = trace::Reason::kRuleSwap;
      record_decision(system, rec);
      return;
    }
  }

  // Rule 3: fairness swap for same-flavor pairs after a quiet interval.
  if (cfg_.enable_forced_swap &&
      system.now() - last_swap_cycle_ >= cfg_.forced_swap_interval &&
      same_flavor_conflict(comp, cfg_.thresholds)) {
    do_swap(system);
    ++forced_;
    history_.clear();
    last_swap_cycle_ = system.now();
    rec.swapped = true;
    rec.reason = trace::Reason::kForcedSwap;
    record_decision(system, rec);
    return;
  }

  rec.reason = votes > 0 ? trace::Reason::kMajorityPending
                         : trace::Reason::kNone;
  record_decision(system, rec);
}

}  // namespace amps::sched
