#include "core/extended.hpp"

#include <cassert>

namespace amps::sched {

ExtendedProposedScheduler::ExtendedProposedScheduler(const ExtendedConfig& cfg)
    : Scheduler("proposed-extended"),
      cfg_(cfg),
      monitors_{WindowMonitor(cfg.window_size), WindowMonitor(cfg.window_size)},
      detectors_{PhaseDetector(cfg.phase), PhaseDetector(cfg.phase)} {
  assert(cfg.window_size > 0 && cfg.history_depth > 0);
}

void ExtendedProposedScheduler::on_start(sim::DualCoreSystem& system) {
  for (std::size_t i = 0; i < 2; ++i) {
    sim::ThreadContext* t = system.thread_on(i);
    monitors_[static_cast<std::size_t>(t->id())].reset(system, *t);
  }
  last_swap_cycle_ = system.now();
}

DecisionHint ExtendedProposedScheduler::next_decision_at(
    const sim::DualCoreSystem& system) const {
  const InstrCount budget = commits_until_window_boundary(monitors_, system);
  if (budget == 0) return {system.now() + 1, kUnboundedCommits};
  return {kNoPendingCycle, budget};
}

void ExtendedProposedScheduler::tick(sim::DualCoreSystem& system) {
  if (system.swap_in_progress()) return;

  bool new_window = false;
  bool phase_changed = false;
  for (std::size_t i = 0; i < 2; ++i) {
    sim::ThreadContext* t = system.thread_on(i);
    const auto tid = static_cast<std::size_t>(t->id());
    if (const auto sample = monitors_[tid].poll(system, *t)) {
      new_window = true;
      phase_changed |= detectors_[tid].update(*sample);
    }
  }
  if (phase_changed) {
    // Re-fill the vote with windows from the new phase only.
    history_.clear();
    ++phase_resets_;
  }
  if (!new_window) return;
  if (!monitors_[0].has_sample() || !monitors_[1].has_sample()) return;

  evaluate(system);
}

bool ExtendedProposedScheduler::guarded_tentative(
    const sim::DualCoreSystem& system, trace::Reason* veto) {
  PairComposition comp;
  const WindowSample* on_int = nullptr;  // thread currently on the INT core
  const WindowSample* on_fp = nullptr;
  for (std::size_t i = 0; i < 2; ++i) {
    const sim::ThreadContext* t = system.thread_on(i);
    const WindowSample& s =
        monitors_[static_cast<std::size_t>(t->id())].latest();
    if (system.core(i).config().kind == CoreKind::Int) {
      comp.int_pct_on_int_core = s.int_pct;
      comp.fp_pct_on_int_core = s.fp_pct;
      on_int = &s;
    } else {
      comp.int_pct_on_fp_core = s.int_pct;
      comp.fp_pct_on_fp_core = s.fp_pct;
      on_fp = &s;
    }
  }

  // Which sub-rule fired decides which thread the swap is rescuing.
  const bool int_rule = comp.int_pct_on_fp_core >= cfg_.thresholds.int_surge &&
                        comp.int_pct_on_int_core <= cfg_.thresholds.int_drop;
  const bool fp_rule = comp.fp_pct_on_int_core >= cfg_.thresholds.fp_surge &&
                       comp.fp_pct_on_fp_core <= cfg_.thresholds.fp_drop;
  if (!int_rule && !fp_rule) return false;

  // §VII guards: the rescued thread must actually be suffering from the
  // weak units — not from memory stalls (high MPKI) — and must not already
  // run at healthy IPC.
  const WindowSample& rescued = int_rule ? *on_fp : *on_int;
  if (rescued.l2_mpki >= cfg_.mem_bound_mpki) {
    ++vetoes_;
    *veto = trace::Reason::kVetoMemBound;
    return false;
  }
  if (rescued.ipc >= cfg_.healthy_ipc) {
    ++vetoes_;
    *veto = trace::Reason::kVetoHealthyIpc;
    return false;
  }
  return true;
}

void ExtendedProposedScheduler::evaluate(sim::DualCoreSystem& system) {
  count_decision();

  trace::DecisionRecord rec;
  for (std::size_t i = 0; i < 2; ++i) {
    const sim::ThreadContext* t = system.thread_on(i);
    const WindowSample& s =
        monitors_[static_cast<std::size_t>(t->id())].latest();
    rec.int_pct[i] = static_cast<float>(s.int_pct);
    rec.fp_pct[i] = static_cast<float>(s.fp_pct);
  }

  trace::Reason veto = trace::Reason::kNone;
  history_.push_back(guarded_tentative(system, &veto));
  while (history_.size() > static_cast<std::size_t>(cfg_.history_depth))
    history_.pop_front();

  int votes = 0;
  for (bool v : history_) votes += v ? 1 : 0;
  rec.votes = static_cast<std::int16_t>(votes);
  rec.history = static_cast<std::int16_t>(history_.size());

  if (history_.size() == static_cast<std::size_t>(cfg_.history_depth)) {
    if (2 * votes > cfg_.history_depth) {
      do_swap(system);
      history_.clear();
      last_swap_cycle_ = system.now();
      rec.swapped = true;
      rec.reason = trace::Reason::kRuleSwap;
      record_decision(system, rec);
      return;
    }
  }

  if (cfg_.enable_forced_swap &&
      system.now() - last_swap_cycle_ >= cfg_.forced_swap_interval) {
    PairComposition comp;
    for (std::size_t i = 0; i < 2; ++i) {
      const sim::ThreadContext* t = system.thread_on(i);
      const WindowSample& s =
          monitors_[static_cast<std::size_t>(t->id())].latest();
      if (system.core(i).config().kind == CoreKind::Int) {
        comp.int_pct_on_int_core = s.int_pct;
        comp.fp_pct_on_int_core = s.fp_pct;
      } else {
        comp.int_pct_on_fp_core = s.int_pct;
        comp.fp_pct_on_fp_core = s.fp_pct;
      }
    }
    if (same_flavor_conflict(comp, cfg_.thresholds)) {
      do_swap(system);
      ++forced_;
      history_.clear();
      last_swap_cycle_ = system.now();
      rec.swapped = true;
      rec.reason = trace::Reason::kForcedSwap;
      record_decision(system, rec);
      return;
    }
  }

  // No swap: a guard veto outranks the generic vote-state reasons.
  if (veto != trace::Reason::kNone) {
    rec.reason = veto;
  } else {
    rec.reason = votes > 0 ? trace::Reason::kMajorityPending
                           : trace::Reason::kNone;
  }
  record_decision(system, rec);
}

}  // namespace amps::sched
