#include "core/phase_detector.hpp"

#include <cmath>

namespace amps::sched {

PhaseDetector::PhaseDetector(const PhaseDetectorConfig& cfg) : cfg_(cfg) {}

void PhaseDetector::reset() noexcept {
  primed_ = false;
  cooldown_ = 0;
  ema_ = {0.0, 0.0, 0.0};
}

bool PhaseDetector::update(const WindowSample& sample) {
  ++windows_;
  const std::array<double, 3> v = {
      sample.int_pct, sample.fp_pct,
      100.0 - sample.int_pct - sample.fp_pct};

  if (!primed_) {
    ema_ = v;
    primed_ = true;
    return false;
  }

  double distance = 0.0;
  for (std::size_t i = 0; i < 3; ++i) distance += std::fabs(v[i] - ema_[i]);

  bool changed = false;
  if (cooldown_ > 0) {
    --cooldown_;
  } else if (distance > cfg_.change_threshold) {
    changed = true;
    ++changes_;
    cooldown_ = cfg_.cooldown_windows;
    ema_ = v;  // snap to the new phase
  }

  if (!changed) {
    for (std::size_t i = 0; i < 3; ++i)
      ema_[i] = (1.0 - cfg_.ema_alpha) * ema_[i] + cfg_.ema_alpha * v[i];
  }
  return changed;
}

}  // namespace amps::sched
