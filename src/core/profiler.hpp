// Offline profiling pass (paper §V steps 1-2): run representative
// benchmarks solo on both core types, sample (%INT, %FP, IPC/Watt) every
// context-switch interval, and pair the per-interval observations into
// ratio samples that feed the HPE ratio matrix and regression surface.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/core_config.hpp"
#include "sim/solo.hpp"
#include "workload/benchmark.hpp"

namespace amps::sched {

/// One paired observation: composition plus the IPC/Watt ratio
/// (INT core / FP core) at the same execution interval.
struct ProfileSample {
  double int_pct = 0.0;
  double fp_pct = 0.0;
  double ratio = 1.0;
};

struct ProfilerConfig {
  InstrCount run_length = 300'000;  ///< per-benchmark profiling budget
  Cycles sample_interval = 150'000; ///< the "2 ms" sampling period
};

class Profiler {
 public:
  Profiler(sim::CoreConfig int_core, sim::CoreConfig fp_core,
           const ProfilerConfig& cfg = {});

  /// Profiles one benchmark on both cores; appends paired samples.
  void profile(const wl::BenchmarkSpec& spec, std::vector<ProfileSample>* out) const;

  /// Profiles a set (typically BenchmarkCatalog::representative_nine()).
  [[nodiscard]] std::vector<ProfileSample> profile_all(
      std::span<const wl::BenchmarkSpec* const> specs) const;

  [[nodiscard]] const ProfilerConfig& config() const noexcept { return cfg_; }

 private:
  sim::CoreConfig int_core_;
  sim::CoreConfig fp_core_;
  ProfilerConfig cfg_;
};

}  // namespace amps::sched
