// Online phase-change detection in the spirit of Sherwood et al. (paper
// ref. [6]): track an exponential moving average of the committed
// instruction-composition vector and flag a phase change when a fresh
// window's composition departs from it by more than a threshold (Manhattan
// distance), with hysteresis so one noisy window does not retrigger.
#pragma once

#include <array>

#include "core/monitor.hpp"

namespace amps::sched {

struct PhaseDetectorConfig {
  /// EMA smoothing factor for the stable-phase composition estimate.
  double ema_alpha = 0.25;
  /// Manhattan distance (in percentage points over the %INT/%FP/%other
  /// 3-vector) that signals a phase change.
  double change_threshold = 20.0;
  /// Windows to wait after a detected change before another may fire.
  int cooldown_windows = 3;
};

/// Feeds on completed WindowSamples of one thread; update() returns true
/// exactly on the windows where a phase change is detected.
class PhaseDetector {
 public:
  explicit PhaseDetector(const PhaseDetectorConfig& cfg = {});

  /// Consumes one completed window; true when this window starts a new
  /// phase relative to the running estimate.
  bool update(const WindowSample& sample);

  [[nodiscard]] std::uint64_t changes_detected() const noexcept {
    return changes_;
  }
  [[nodiscard]] std::uint64_t windows_seen() const noexcept { return windows_; }

  /// Current stable-phase composition estimate (%INT, %FP, %other).
  [[nodiscard]] const std::array<double, 3>& estimate() const noexcept {
    return ema_;
  }

  void reset() noexcept;

 private:
  PhaseDetectorConfig cfg_;
  std::array<double, 3> ema_{};
  bool primed_ = false;
  int cooldown_ = 0;
  std::uint64_t changes_ = 0;
  std::uint64_t windows_ = 0;
};

}  // namespace amps::sched
