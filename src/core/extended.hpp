// The paper's stated future work (§VII): "We plan to improve upon these
// scenarios by including the performance (IPC) and last-level cache miss
// rate information into our swapping conditions."
//
// ExtendedProposedScheduler = the Fig. 5 composition rules, plus:
//  * a memory-bound veto — a thread whose window L2 MPKI exceeds a
//    threshold gains nothing from stronger arithmetic units, so a swap on
//    its behalf is suppressed (the mcf-style mispredict the paper calls
//    out);
//  * an IPC guard — if the thread the rules want to rescue is already
//    running at healthy IPC on its "wrong" core, the weak units are not
//    actually the bottleneck and the swap is suppressed;
//  * phase-change fast path — a Sherwood-style detector clears the vote
//    history when a thread's composition shifts abruptly, so the majority
//    vote re-fills with fresh windows instead of averaging across the
//    phase boundary.
#pragma once

#include <deque>

#include "core/monitor.hpp"
#include "core/phase_detector.hpp"
#include "core/scheduler.hpp"
#include "core/swap_rules.hpp"

namespace amps::sched {

struct ExtendedConfig {
  InstrCount window_size = 1000;
  int history_depth = 5;
  Cycles forced_swap_interval = 150'000;
  SwapRuleThresholds thresholds;
  bool enable_forced_swap = true;

  /// L2 misses per kilo-instruction above which a thread counts as
  /// memory-bound (swaps on its behalf are vetoed).
  double mem_bound_mpki = 12.0;
  /// IPC at or above which a thread is "healthy" on its current core, so
  /// the rules' rescue swap is unnecessary.
  double healthy_ipc = 1.0;
  PhaseDetectorConfig phase;
};

class ExtendedProposedScheduler final : public Scheduler {
 public:
  explicit ExtendedProposedScheduler(const ExtendedConfig& cfg);

  void on_start(sim::DualCoreSystem& system) override;
  void tick(sim::DualCoreSystem& system) override;
  /// All decisions (rules, vetoes, forced swap) fire at window boundaries.
  [[nodiscard]] DecisionHint next_decision_at(
      const sim::DualCoreSystem& system) const override;

  [[nodiscard]] const ExtendedConfig& config() const noexcept { return cfg_; }
  /// Rule-2 swaps suppressed by the memory-bound / IPC guards.
  [[nodiscard]] std::uint64_t vetoes() const noexcept { return vetoes_; }
  /// Vote-history resets triggered by the phase detector.
  [[nodiscard]] std::uint64_t phase_resets() const noexcept {
    return phase_resets_;
  }
  [[nodiscard]] std::uint64_t forced_swaps() const noexcept { return forced_; }

 private:
  void evaluate(sim::DualCoreSystem& system);
  /// The Fig. 5 tentative decision with the §VII vetoes applied. When a
  /// guard suppressed a rule that would have fired, `veto` is set to the
  /// guard's trace reason (kVetoMemBound / kVetoHealthyIpc).
  [[nodiscard]] bool guarded_tentative(const sim::DualCoreSystem& system,
                                       trace::Reason* veto);

  ExtendedConfig cfg_;
  WindowMonitor monitors_[2];
  PhaseDetector detectors_[2];
  std::deque<bool> history_;
  Cycles last_swap_cycle_ = 0;
  std::uint64_t vetoes_ = 0;
  std::uint64_t phase_resets_ = 0;
  std::uint64_t forced_ = 0;
};

}  // namespace amps::sched
