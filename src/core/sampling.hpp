// Sampling-based scheduling — the related-work baseline of Kumar et al.
// [3] and Becchi & Crowley [10] (paper §II): instead of predicting, the
// scheduler periodically *measures*. At every decision interval it samples
// the current assignment, force-swaps, warms up, samples the swapped
// assignment, and keeps whichever configuration delivered the better
// combined IPC/Watt. Robust but pays two forced migrations plus sampling
// noise per decision — exactly the cost the paper's predictive schemes
// avoid.
#pragma once

#include "core/scheduler.hpp"

namespace amps::sched {

struct SamplingConfig {
  Cycles decision_interval = 150'000;  ///< how often to re-evaluate
  Cycles sample_cycles = 10'000;       ///< measurement span per configuration
  Cycles warmup_cycles = 3'000;        ///< post-swap cycles excluded from
                                       ///< measurement (cold caches)
  /// The swapped configuration must beat the incumbent by this factor to
  /// be kept (hysteresis against sampling noise).
  double keep_threshold = 1.02;
};

class SamplingScheduler final : public Scheduler {
 public:
  explicit SamplingScheduler(const SamplingConfig& cfg = {});

  void on_start(sim::DualCoreSystem& system) override;
  void tick(sim::DualCoreSystem& system) override;
  /// Every state transition is cycle-gated on `state_until_`.
  [[nodiscard]] DecisionHint next_decision_at(
      const sim::DualCoreSystem& /*system*/) const override {
    return {state_until_, kUnboundedCommits};
  }

  [[nodiscard]] const SamplingConfig& config() const noexcept { return cfg_; }
  /// Decisions that kept the swapped configuration.
  [[nodiscard]] std::uint64_t kept_swapped() const noexcept { return kept_; }

 private:
  enum class State {
    Idle,            // waiting for the next decision interval
    MeasureCurrent,  // sampling the incumbent assignment
    Warmup,          // swapped; letting caches warm
    MeasureSwapped,  // sampling the swapped assignment
  };

  struct Snapshot {
    InstrCount committed = 0;
    Energy energy = 0.0;
  };

  [[nodiscard]] Snapshot snapshot(const sim::DualCoreSystem& system) const;
  /// Combined IPC/Watt (= instructions per unit energy) since `from`.
  [[nodiscard]] double ipw_since(const sim::DualCoreSystem& system,
                                 const Snapshot& from) const;

  SamplingConfig cfg_;
  State state_ = State::Idle;
  Cycles state_until_ = 0;
  Snapshot mark_;
  double incumbent_ipw_ = 0.0;
  std::uint64_t kept_ = 0;
};

}  // namespace amps::sched
