// Paper Fig. 1: "Performance-per-watt achieved for various workloads on two
// different core types A and B." Core A is the FP core, core B the INT core.
// Expected shape: equake/fpstress better on A, CRC32/intstress better on B,
// gcc/mcf roughly equal.
#include <iostream>

#include "bench_common.hpp"
#include "harness/run_cache.hpp"
#include "sim/solo.hpp"

int main() {
  using namespace amps;
  const auto ctx = bench::make_context(/*default_pairs=*/0);
  bench::print_header("Fig. 1 — IPC/Watt per workload on core A (FP) vs core B (INT)",
                      ctx);

  const wl::BenchmarkCatalog catalog;
  const sim::CoreConfig fp = sim::fp_core_config();
  const sim::CoreConfig intc = sim::int_core_config();

  Table table({"workload", "flavor", "IPC/W core A (FP)", "IPC/W core B (INT)",
               "B/A ratio", "better core"});
  for (const char* name :
       {"equake", "fpstress", "gcc", "mcf", "CRC32", "intstress"}) {
    const auto& spec = catalog.by_name(name);
    const auto on_fp = harness::cached_solo(fp, spec, ctx.scale.run_length);
    const auto on_int = harness::cached_solo(intc, spec, ctx.scale.run_length);
    const double a = on_fp.ipc_per_watt();
    const double b = on_int.ipc_per_watt();
    const double ratio = b / a;
    const char* better =
        ratio > 1.05 ? "B (INT)" : (ratio < 0.95 ? "A (FP)" : "~equal");
    table.row()
        .cell(name)
        .cell(wl::to_string(spec.flavor()))
        .cell(a, 4)
        .cell(b, 4)
        .cell(ratio, 3)
        .cell(better);
  }
  bench::emit("fig1", table);
  std::cout << "\nPaper shape: A wins equake/fpstress, B wins CRC32/intstress,"
               " gcc/mcf ~equal.\n";
  return 0;
}
