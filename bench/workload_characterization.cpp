// §IV workload table: characterizes the full 37-benchmark pool the way
// architecture papers tabulate their workloads — declared composition,
// phase structure, and measured IPC / L2 MPKI / IPC-per-watt affinity on
// both core types. This is the ground truth every scheduling result in
// the repository rests on.
#include <iostream>

#include "bench_common.hpp"
#include "harness/run_cache.hpp"
#include "sim/solo.hpp"

int main() {
  using namespace amps;
  const auto ctx = bench::make_context(0);
  bench::print_header("§IV — the 37-benchmark pool, characterized", ctx);

  const wl::BenchmarkCatalog catalog;
  const sim::CoreConfig ic = sim::int_core_config();
  const sim::CoreConfig fc = sim::fp_core_config();
  const InstrCount budget = ctx.scale.run_length / 3;

  Table table({"benchmark", "suite", "flavor", "phases", "%INT", "%FP",
               "IPC int", "IPC fp", "MPKI", "affinity (int/fp IPW)"});
  int int_affine = 0, fp_affine = 0, neutral = 0;
  for (const auto& spec : catalog.all()) {
    const auto on_int = harness::cached_solo(ic, spec, budget);
    const auto on_fp = harness::cached_solo(fc, spec, budget);
    const isa::InstrMix avg = spec.average_mix();
    const double ratio = on_int.ipc_per_watt() / on_fp.ipc_per_watt();
    if (ratio > 1.05)
      ++int_affine;
    else if (ratio < 0.95)
      ++fp_affine;
    else
      ++neutral;
    table.row()
        .cell(spec.name)
        .cell(wl::to_string(spec.suite))
        .cell(wl::to_string(spec.flavor()))
        .cell(static_cast<long long>(spec.num_phases()))
        .cell(100.0 * avg.int_fraction(), 1)
        .cell(100.0 * avg.fp_fraction(), 1)
        .cell(on_int.ipc(), 3)
        .cell(on_fp.ipc(), 3)
        .cell(on_int.l2_mpki(), 1)
        .cell(ratio, 3);
  }
  bench::emit("workload_characterization", table);
  std::cout << "\npool balance: " << int_affine << " INT-affine, " << fp_affine
            << " FP-affine, " << neutral
            << " neutral — the mixed population the paper's random "
               "2-benchmark combinations draw from.\n";
  return 0;
}
