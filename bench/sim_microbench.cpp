// Google-benchmark microbenchmarks of the simulator substrates: stream
// generation rate, cache/predictor access costs and whole-core simulation
// throughput (simulated instructions and cycles per wall-second). These
// guard the simulator's own performance, not the paper's results.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/lanes.hpp"
#include "sim/core.hpp"
#include "sim/system.hpp"
#include "uarch/branch_predictor.hpp"
#include "uarch/cache.hpp"
#include "workload/benchmark.hpp"
#include "workload/stream.hpp"
#include "workload/trace_store.hpp"

namespace {

using namespace amps;

const wl::BenchmarkCatalog& catalog() {
  static const wl::BenchmarkCatalog instance;
  return instance;
}

void BM_StreamGeneration(benchmark::State& state) {
  wl::InstructionStream stream(catalog().by_name("gcc"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stream.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamGeneration);

// Live batched generation vs trace-store replay, micro-ops/second: the
// generator walks the phase model per op, replay is a chunk memcpy. The
// gap is the per-op cost the trace store removes from cold runs.
void BM_StreamGenerationBatched(benchmark::State& state) {
  wl::InstructionStream stream(catalog().by_name("gcc"));
  std::vector<isa::MicroOp> buf(wl::kTraceChunkOps);
  for (auto _ : state) {
    stream.next_batch(buf.data(), buf.size());
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_StreamGenerationBatched);

void BM_StreamReplayFromTraceStore(benchmark::State& state) {
  const std::string dir =
      std::filesystem::temp_directory_path() / "amps-microbench-traces";
  std::filesystem::create_directories(dir);
  std::vector<isa::MicroOp> buf(wl::kTraceChunkOps);
  {
    // Warm the store: one capture pass over the benched span.
    wl::ReplayOpSource warm(catalog().by_name("gcc"), 0, dir, true, true);
    for (int i = 0; i < 8; ++i) warm.next_batch(buf.data(), buf.size());
  }
  auto src = std::make_unique<wl::ReplayOpSource>(catalog().by_name("gcc"),
                                                  0, dir, true, false);
  std::uint64_t served = 0;
  for (auto _ : state) {
    if (served >= 8 * wl::kTraceChunkOps) {  // stay on the captured prefix
      state.PauseTiming();
      src = std::make_unique<wl::ReplayOpSource>(catalog().by_name("gcc"), 0,
                                                 dir, true, false);
      served = 0;
      state.ResumeTiming();
    }
    src->next_batch(buf.data(), buf.size());
    served += buf.size();
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(buf.size()));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_StreamReplayFromTraceStore);

void BM_CacheAccess(benchmark::State& state) {
  uarch::Cache cache(
      {.size_bytes = 4096, .line_bytes = 64, .associativity = 2});
  Prng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.below(1 << 16), false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void BM_BranchPredictor(benchmark::State& state) {
  uarch::BranchPredictor bp;
  Prng rng(2);
  std::uint64_t pc = 0x1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bp.access(pc, rng.chance(0.8)));
    pc += 4;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredictor);

void BM_SoloCoreCycles(benchmark::State& state) {
  // Whole-core simulation speed in simulated cycles/second. The first
  // argument selects the workload flavor; the second picks the core
  // engine (0 = reference per-cycle model, 1 = fast decoded-ring/SoA).
  const char* names[] = {"bitcount", "equake", "mcf"};
  const auto& spec = catalog().by_name(names[state.range(0)]);
  sim::CoreConfig cfg = sim::int_core_config();
  cfg.fast_engine = state.range(1) != 0;
  sim::Core core(cfg);
  sim::ThreadContext thread(0, spec);
  core.attach(&thread);
  Cycles now = 0;
  for (auto _ : state) {
    core.tick(now);
    ++now;
  }
  core.detach();
  state.SetItemsProcessed(state.iterations());
  state.counters["sim_ipc"] =
      static_cast<double>(thread.committed_total()) / static_cast<double>(now);
}
BENCHMARK(BM_SoloCoreCycles)
    ->ArgNames({"bench", "fast"})
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 0})
    ->Args({2, 1});

void BM_DualCoreStep(benchmark::State& state) {
  sim::CoreConfig big = sim::int_core_config();
  sim::CoreConfig little = sim::fp_core_config();
  big.fast_engine = little.fast_engine = state.range(0) != 0;
  sim::DualCoreSystem system(big, little, 100);
  sim::ThreadContext t0(0, catalog().by_name("gzip"));
  sim::ThreadContext t1(1, catalog().by_name("swim"));
  system.attach_threads(&t0, &t1);
  for (auto _ : state) system.step();
  state.SetItemsProcessed(state.iterations());
  state.counters["committed"] = static_cast<double>(
      t0.committed_total() + t1.committed_total());
}
BENCHMARK(BM_DualCoreStep)->ArgNames({"fast"})->Arg(0)->Arg(1);

void BM_LanePairRuns(benchmark::State& state) {
  // Lane-executor sweep cost at widths 1/4/8/16 over a fixed 16-job batch
  // (8 pairs x {proposed, round-robin}), small scale so one iteration is
  // cheap. Width 1 is the scalar fast path; wider lanes share decode.
  const std::size_t lanes = static_cast<std::size_t>(state.range(0));
  sim::SimScale scale;
  scale.context_switch_interval = 5'000;
  scale.run_length = 10'000;
  const harness::ExperimentRunner runner(scale);
  const char* names[] = {"gcc", "swim", "gzip", "mcf",
                         "sha", "ammp", "bitcount", "equake"};
  std::vector<harness::BenchmarkPair> pairs;
  for (std::size_t i = 0; i < 8; ++i)
    pairs.push_back({&catalog().by_name(names[i]),
                     &catalog().by_name(names[(i + 1) % 8])});
  const harness::SchedulerFactory factories[] = {
      runner.proposed_factory(), runner.round_robin_factory()};
  std::uint64_t committed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    // Scheduler& jobs never cache, so every iteration simulates cold.
    std::vector<std::unique_ptr<sched::Scheduler>> owners;
    std::vector<harness::LanePairJob> jobs;
    for (const auto& pair : pairs) {
      for (const auto& factory : factories) {
        owners.push_back(factory());
        jobs.push_back(harness::LanePairJob{&runner, pair, nullptr,
                                            owners.back().get(), nullptr});
      }
    }
    state.ResumeTiming();
    const auto results = harness::run_pair_jobs(jobs, lanes);
    for (const auto& r : results)
      committed += r.threads[0].committed + r.threads[1].committed;
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() * 16);
  state.counters["committed"] = static_cast<double>(committed);
}
BENCHMARK(BM_LanePairRuns)->ArgNames({"lanes"})->Arg(1)->Arg(4)->Arg(8)->Arg(
    16);

void BM_SwapCost(benchmark::State& state) {
  // Wall cost of the swap machinery itself (flush + replay bookkeeping).
  sim::DualCoreSystem system(sim::int_core_config(), sim::fp_core_config(),
                             /*swap_overhead=*/1);
  sim::ThreadContext t0(0, catalog().by_name("sha"));
  sim::ThreadContext t1(1, catalog().by_name("ammp"));
  system.attach_threads(&t0, &t1);
  for (int i = 0; i < 1000; ++i) system.step();  // warm pipelines
  for (auto _ : state) {
    system.swap_threads();
    system.step();  // complete the 1-cycle migration
    system.step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwapCost);

}  // namespace
