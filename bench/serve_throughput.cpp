// amps-serve throughput bench, in three parts:
//
//  1. Cold serve — an in-process TcpServer answers every (pair, scheduler)
//     request once with an empty RunCache; concurrent clients measure
//     requests/sec and per-request p50/p99 latency.
//  2. Warm serve — the identical request set again: every answer now comes
//     from the run cache. The warm/cold ratio is what a repeat client
//     actually experiences, and the warm responses must be byte-identical
//     to the cold ones.
//  3. Bit-identity — the cache is cleared and each request is recomputed
//     directly with ExperimentRunner + the protocol serializer; the served
//     "result" objects must match byte-for-byte (the cache-identity
//     guarantee of DESIGN.md §10).
//
// A fourth mini-scenario pauses a tiny-queue service and bursts requests
// at it to show bounded-queue backpressure: the overflow is answered with
// retriable "queue_full" errors, and everything accepted still completes
// after the pause lifts.
//
// Results go to stdout and to BENCH_serve.json in the working directory.
// Knobs: AMPS_SCALE, AMPS_PAIRS, AMPS_SEED, AMPS_THREADS.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "harness/parallel.hpp"
#include "harness/run_cache.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/service.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using amps::service::Json;

struct PhaseStats {
  double seconds = 0.0;
  double rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

double percentile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

/// Fires every request line at the server from `clients` concurrent
/// connections (request i goes to client i % clients, synchronously per
/// client). Fills `responses[i]` and returns wall/latency stats.
PhaseStats run_phase(std::uint16_t port, const std::vector<std::string>& lines,
                     std::size_t clients, std::vector<std::string>* responses) {
  responses->assign(lines.size(), std::string());
  std::vector<std::vector<double>> latencies(clients);
  const amps::bench::Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      amps::service::LineClient client;
      client.connect(port);
      for (std::size_t i = c; i < lines.size(); i += clients) {
        const auto t0 = Clock::now();
        (*responses)[i] = client.request(lines[i]);
        latencies[c].push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - t0)
                .count());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  PhaseStats stats;
  stats.seconds = watch.seconds();
  stats.rps = static_cast<double>(lines.size()) / stats.seconds;
  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  stats.p50_us = percentile(all, 0.50);
  stats.p99_us = percentile(all, 0.99);
  return stats;
}

/// Extracts the "result" sub-object of a response line, re-serialized.
std::string result_of(const std::string& response) {
  std::string error;
  const Json doc = Json::parse(response, &error);
  if (!error.empty() || !doc.get("ok").as_bool(false)) return "<error>";
  return doc.get("result").dump();
}

}  // namespace

int main() {
  using namespace amps;
  const auto ctx = bench::make_context(/*default_pairs=*/8);
  bench::print_header("amps-serve throughput — cold vs warm cache", ctx);

  const wl::BenchmarkCatalog catalog;
  const auto pairs = harness::sample_pairs(catalog, ctx.pairs, ctx.seed);
  const std::vector<std::string> schedulers = {"proposed", "static",
                                               "round-robin"};

  // One request line per (pair, scheduler); ids index into the set.
  std::vector<std::string> lines;
  for (const auto& pair : pairs) {
    for (const std::string& sched : schedulers) {
      Json req = Json::object();
      req.set("id", Json(static_cast<std::uint64_t>(lines.size())));
      req.set("op", Json("run_pair"));
      Json bench_names = Json::array();
      bench_names.push_back(Json(pair.first->name));
      bench_names.push_back(Json(pair.second->name));
      req.set("bench", std::move(bench_names));
      req.set("scheduler", Json(sched));
      req.set("scale", Json(env_paper_scale() ? "paper" : "ci"));
      lines.push_back(req.dump());
    }
  }
  const std::size_t clients = std::min<std::size_t>(4, lines.size());

  service::SimulationService svc;
  service::TcpServer server(svc, /*port=*/0);
  std::cout << "[serving " << lines.size() << " request(s) ("
            << pairs.size() << " pair(s) x " << schedulers.size()
            << " scheduler(s)) from " << clients
            << " concurrent client(s) on 127.0.0.1:" << server.port()
            << "]\n\n";

  // --- parts 1+2: cold serve, then the identical warm set ----------------
  harness::RunCache::instance().clear();
  std::vector<std::string> cold_responses;
  const PhaseStats cold = run_phase(server.port(), lines, clients,
                                    &cold_responses);
  std::vector<std::string> warm_responses;
  const PhaseStats warm = run_phase(server.port(), lines, clients,
                                    &warm_responses);
  const auto cache = harness::RunCache::instance().stats();

  bool warm_identical = true;
  for (std::size_t i = 0; i < lines.size(); ++i)
    warm_identical = warm_identical &&
                     result_of(cold_responses[i]) == result_of(warm_responses[i]);

  Table phases({"serve phase", "wall s", "req/s", "p50 us", "p99 us"});
  phases.row()
      .cell("cold cache")
      .cell(cold.seconds, 3)
      .cell(cold.rps, 1)
      .cell(cold.p50_us, 0)
      .cell(cold.p99_us, 0);
  phases.row()
      .cell("warm cache")
      .cell(warm.seconds, 3)
      .cell(warm.rps, 1)
      .cell(warm.p50_us, 0)
      .cell(warm.p99_us, 0);
  bench::emit("serve_phases", phases);
  const double warm_speedup =
      warm.seconds > 0.0 ? cold.seconds / warm.seconds : 0.0;
  std::cout << "warm-serve speedup: " << warm_speedup << "x  (cache: "
            << cache.hits << " hit(s), " << cache.misses << " miss(es)); "
            << "warm responses "
            << (warm_identical ? "byte-identical" : "DIFFER") << "\n\n";

  // --- part 3: served results vs direct recomputation --------------------
  std::cout << "[bit-identity: recomputing every request directly...]\n";
  harness::RunCache::instance().clear();
  bool bit_identical = true;
  {
    const harness::ExperimentRunner runner(ctx.scale);
    std::size_t i = 0;
    for (const auto& pair : pairs) {
      for (const std::string& sched : schedulers) {
        const harness::SchedulerFactory factory =
            sched == "proposed"  ? runner.proposed_factory()
            : sched == "static"  ? runner.static_factory()
                                 : runner.round_robin_factory();
        const std::string direct =
            service::to_json(runner.run_pair(pair, factory)).dump();
        bit_identical = bit_identical && direct == result_of(cold_responses[i]);
        ++i;
      }
    }
  }
  std::cout << "served vs direct results: "
            << (bit_identical ? "byte-identical" : "DIFFER") << "\n\n";

  // --- part 4: bounded-queue backpressure under a paused dispatcher ------
  service::ServiceConfig tiny;
  tiny.queue_capacity = 4;
  tiny.batch_max = 2;
  service::SimulationService burst_svc(tiny);
  burst_svc.set_paused(true);
  const std::size_t burst = 32;
  std::mutex burst_mutex;
  std::size_t rejected = 0;
  std::size_t completed = 0;
  for (std::size_t i = 0; i < burst; ++i) {
    burst_svc.submit(lines[i % lines.size()], [&](const std::string& resp) {
      std::string error;
      const Json doc = Json::parse(resp, &error);
      std::lock_guard<std::mutex> lock(burst_mutex);
      if (doc.get("ok").as_bool(false)) {
        ++completed;
      } else if (doc.get("error").get("code").as_string() == "queue_full") {
        ++rejected;
      }
    });
  }
  burst_svc.set_paused(false);
  burst_svc.drain();
  std::cout << "backpressure burst: " << burst << " submitted to a "
            << tiny.queue_capacity << "-slot queue -> " << rejected
            << " rejected queue_full (retriable), " << completed
            << " completed after the pause\n";

  // --- machine-readable record -------------------------------------------
  std::ofstream json("BENCH_serve.json");
  if (json) {
    json << "{\n"
         << "  \"scale\": \"" << (env_paper_scale() ? "paper" : "ci")
         << "\",\n"
         << "  \"pairs\": " << pairs.size() << ",\n"
         << "  \"seed\": " << ctx.seed << ",\n"
         << "  \"workers\": " << harness::default_worker_count() << ",\n"
         << "  \"requests\": " << lines.size() << ",\n"
         << "  \"clients\": " << clients << ",\n"
         << "  \"cold_seconds\": " << cold.seconds << ",\n"
         << "  \"cold_rps\": " << cold.rps << ",\n"
         << "  \"cold_p50_us\": " << cold.p50_us << ",\n"
         << "  \"cold_p99_us\": " << cold.p99_us << ",\n"
         << "  \"warm_seconds\": " << warm.seconds << ",\n"
         << "  \"warm_rps\": " << warm.rps << ",\n"
         << "  \"warm_p50_us\": " << warm.p50_us << ",\n"
         << "  \"warm_p99_us\": " << warm.p99_us << ",\n"
         << "  \"warm_speedup\": " << warm_speedup << ",\n"
         << "  \"warm_identical\": " << (warm_identical ? "true" : "false")
         << ",\n"
         << "  \"bit_identical\": " << (bit_identical ? "true" : "false")
         << ",\n"
         << "  \"burst_submitted\": " << burst << ",\n"
         << "  \"burst_rejected_queue_full\": " << rejected << ",\n"
         << "  \"burst_completed\": " << completed << "\n"
         << "}\n";
    std::cout << "\nwrote BENCH_serve.json\n";
  } else {
    std::cerr << "[warn] cannot write BENCH_serve.json\n";
  }
  return (warm_identical && bit_identical) ? 0 : 1;
}
