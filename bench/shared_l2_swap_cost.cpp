// §VI-C quantified: "the cost of swapping could vary significantly
// depending on whether a shared cache is used for exchanging architectural
// states or not." This bench measures, for increasingly frequent forced
// swapping, the throughput retained relative to never swapping — once with
// the paper's private per-core L2s (128 K each) and once with one shared
// 256 K L2 (same total capacity, with port contention). With the shared
// array the migrated thread's working set survives the swap.
#include <iostream>

#include "bench_common.hpp"
#include "mathx/stats.hpp"

namespace {

using namespace amps;

/// Combined committed instructions when force-swapping every `period`
/// cycles (0 = never) over a fixed horizon.
InstrCount run_with_period(const harness::BenchmarkPair& pair, bool shared,
                           Cycles period, Cycles horizon) {
  const std::optional<uarch::CacheConfig> shared_cfg =
      shared ? std::optional<uarch::CacheConfig>(
                   uarch::CacheConfig{.size_bytes = 256 * 1024,
                                      .line_bytes = 64,
                                      .associativity = 8})
             : std::nullopt;
  sim::DualCoreSystem system(sim::int_core_config(), sim::fp_core_config(),
                             /*swap_overhead=*/100, shared_cfg);
  sim::ThreadContext t0(0, *pair.first);
  sim::ThreadContext t1(1, *pair.second);
  system.attach_threads(&t0, &t1);
  for (Cycles i = 0; i < horizon; ++i) {
    system.step();
    if (period != 0 && i % period == period - 1) system.swap_threads();
  }
  return t0.committed_total() + t1.committed_total();
}

}  // namespace

int main() {
  const auto ctx = bench::make_context(0);
  bench::print_header(
      "§VI-C — swap cost with private vs shared L2 (throughput retained)",
      ctx);

  const wl::BenchmarkCatalog catalog;
  // Pairs whose working sets live in the L2 — where migration cost shows.
  const std::vector<harness::BenchmarkPair> pairs = {
      {&catalog.by_name("gzip"), &catalog.by_name("equake")},
      {&catalog.by_name("bzip2"), &catalog.by_name("applu")},
      {&catalog.by_name("qsort"), &catalog.by_name("art")},
      {&catalog.by_name("gcc"), &catalog.by_name("mgrid")},
  };
  const Cycles horizon = ctx.scale.run_length;

  Table table({"swap period (cycles)", "private L2: throughput retained %",
               "shared L2: throughput retained %"});
  for (const Cycles period : {Cycles{0}, Cycles{100'000}, Cycles{50'000},
                              Cycles{20'000}, Cycles{10'000}}) {
    std::vector<double> priv, shar;
    for (const auto& pair : pairs) {
      const auto base_p = run_with_period(pair, false, 0, horizon);
      const auto base_s = run_with_period(pair, true, 0, horizon);
      if (period == 0) {
        priv.push_back(100.0);
        shar.push_back(100.0);
        continue;
      }
      priv.push_back(100.0 *
                     static_cast<double>(run_with_period(pair, false, period,
                                                         horizon)) /
                     static_cast<double>(base_p));
      shar.push_back(100.0 *
                     static_cast<double>(run_with_period(pair, true, period,
                                                         horizon)) /
                     static_cast<double>(base_s));
    }
    table.row()
        .cell(period == 0 ? "never (baseline)" : std::to_string(period))
        .cell(mathx::mean(priv), 1)
        .cell(mathx::mean(shar), 1);
  }
  bench::emit("shared_l2_swap_cost", table);
  std::cout << "\nShape: as swapping gets more frequent the private-L2 "
               "organization loses throughput faster — each migration "
               "re-fetches the working set — while the shared L2 keeps it "
               "warm, the organization-dependence §VI-C calls out.\n";
  return 0;
}
