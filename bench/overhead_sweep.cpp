// Paper §VI-C: reconfiguration-overhead sweep. Both the proposed scheme
// and HPE re-run with per-swap overheads from 100 cycles to 1M cycles
// (the paper cites Srinivasan et al.'s 0.9M-cycle migration cost as the
// extreme). Expected shape: the mean weighted improvement over HPE drops
// by only ~1% across the whole range.
#include <iostream>

#include "bench_common.hpp"
#include "harness/overhead.hpp"

int main() {
  using namespace amps;
  const auto ctx = bench::make_context(/*default_pairs=*/12);
  bench::print_header("§VI-C — swap-overhead sweep (proposed vs HPE)", ctx);

  const wl::BenchmarkCatalog catalog;
  const harness::ExperimentRunner runner(ctx.scale);
  const auto models = bench::build_models(runner, catalog);
  const auto pairs = harness::sample_pairs(catalog, ctx.pairs, ctx.seed);

  harness::OverheadSweepConfig cfg;
  if (!env_paper_scale()) {
    // At CI scale a 1M-cycle overhead would exceed the whole run; sweep a
    // proportional range instead (same ratio to the decision interval).
    cfg.overheads = {100, 1'000, 5'000, 20'000, 50'000};
  }

  const auto points =
      harness::run_overhead_sweep(ctx.scale, pairs, *models.regression, cfg);

  Table table({"swap overhead (cycles)", "mean weighted improvement vs HPE %"});
  for (const auto& p : points)
    table.row()
        .cell(static_cast<long long>(p.swap_overhead))
        .cell(p.mean_weighted_improvement_pct, 2);
  bench::emit("overhead_sweep", table);

  std::cout << "\ndrop from min to max overhead: "
            << points.front().mean_weighted_improvement_pct -
                   points.back().mean_weighted_improvement_pct
            << " percentage points (paper: ~0.9)\n";
  return 0;
}
