// Ablation bench (beyond the paper, motivated by its §VII discussion):
// which parts of the proposed scheme matter?
//   * history vote depth 1 (react instantly) vs 5 (paper) vs 10
//   * the rule-3 forced fairness swap on/off
//   * HPE with matrix vs regression predictor
//   * an idealized fine-grained predictor (regression at window granularity)
// All reported as mean weighted IPC/Watt improvement over the static
// (never-swap) baseline on the same random pairs.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/extended.hpp"
#include "core/oracle.hpp"
#include "core/sampling.hpp"
#include "core/proposed.hpp"
#include "mathx/stats.hpp"
#include "metrics/speedup.hpp"

int main() {
  using namespace amps;
  const auto ctx = bench::make_context(/*default_pairs=*/12);
  bench::print_header("Ablation — scheme components vs static baseline", ctx);

  const wl::BenchmarkCatalog catalog;
  const harness::ExperimentRunner runner(ctx.scale);
  const auto models = bench::build_models(runner, catalog);
  const auto pairs = harness::sample_pairs(catalog, ctx.pairs, ctx.seed);

  auto proposed_variant = [&](int history, bool forced) {
    sched::ProposedConfig cfg;
    cfg.window_size = ctx.scale.window_size;
    cfg.history_depth = history;
    cfg.forced_swap_interval = ctx.scale.context_switch_interval;
    cfg.enable_forced_swap = forced;
    return harness::SchedulerFactory(
        [cfg] { return std::make_unique<sched::ProposedScheduler>(cfg); });
  };
  auto extended_variant = [&]() {
    sched::ExtendedConfig cfg;
    cfg.window_size = ctx.scale.window_size;
    cfg.history_depth = ctx.scale.history_depth;
    cfg.forced_swap_interval = ctx.scale.context_switch_interval;
    return harness::SchedulerFactory(
        [cfg] { return std::make_unique<sched::ExtendedProposedScheduler>(cfg); });
  };
  auto sampling_variant = [&]() {
    sched::SamplingConfig cfg;
    cfg.decision_interval = ctx.scale.context_switch_interval;
    return harness::SchedulerFactory(
        [cfg] { return std::make_unique<sched::SamplingScheduler>(cfg); });
  };
  auto fine_predictor = [&]() {
    sched::OracleConfig cfg;
    cfg.window_size = ctx.scale.window_size;
    return harness::SchedulerFactory([cfg, &models] {
      return std::make_unique<sched::OracleScheduler>(*models.regression, cfg);
    });
  };

  struct Variant {
    const char* label;
    harness::SchedulerFactory factory;
  };
  const Variant variants[] = {
      {"proposed (paper: history 5, forced swap on)", proposed_variant(5, true)},
      {"proposed, history 1 (no vote damping)", proposed_variant(1, true)},
      {"proposed, history 10", proposed_variant(10, true)},
      {"proposed, forced swap OFF", proposed_variant(5, false)},
      {"proposed-extended (+IPC/MPKI guards, phase reset)", extended_variant()},
      {"hpe-matrix (2 ms interval)", runner.hpe_factory(*models.matrix)},
      {"hpe-regression (2 ms interval)", runner.hpe_factory(*models.regression)},
      {"fine-grained regression predictor", fine_predictor()},
      {"sampling (Kumar/Becchi-style, 2 ms)", sampling_variant()},
      {"round-robin", runner.round_robin_factory()},
  };

  // Static baseline per pair, computed once.
  std::vector<metrics::PairRunResult> base;
  for (const auto& p : pairs)
    base.push_back(runner.run_pair(p, runner.static_factory()));

  Table table({"variant", "mean weighted improvement vs static %",
               "mean swaps per run"});
  for (const auto& v : variants) {
    std::vector<double> improvements;
    double swaps = 0.0;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const auto r = runner.run_pair(pairs[i], v.factory);
      improvements.push_back(
          metrics::to_improvement_pct(r.weighted_ipw_speedup_vs(base[i])));
      swaps += static_cast<double>(r.swap_count);
    }
    table.row()
        .cell(v.label)
        .cell(mathx::mean(improvements), 2)
        .cell(swaps / static_cast<double>(pairs.size()), 1);
  }
  bench::emit("ablation_rules", table);
  std::cout << "\nReading guide: improvements over static come entirely from "
               "correcting bad initial assignments and chasing phases; on "
               "samples where the random initial assignment is already "
               "good, dynamic schemes pay their swap/fairness costs and go "
               "slightly negative. Round-Robin's unconditional swapping "
               "should always sit at the bottom.\n";
  return 0;
}
