// Simulation-throughput microbench for the fast path, in three parts:
//
//  1. Cold-run core model — the same pair runs simulated with the reference
//     per-cycle engine vs. the fast engine (pre-decoded rings + SoA
//     pipeline state, AMPS_FAST_CORE); reports cold simulated cycles/sec
//     for both plus the speedup. This is the number that matters for a
//     first (uncached) run of any experiment.
//  1b. Trace capture/replay — the same fast-engine runs repeated twice with
//     the micro-op trace store enabled: a *first-cold* pass that captures
//     chunk files (measures capture overhead) and a *second-cold* pass that
//     replays them with zero generator work (trace present, no RunCache —
//     the Scheduler& overload never caches). The second-cold speedup over
//     the reference engine is the PR 2 "3x cold-run" metric.
//  1c. Lane sweep — the cold fast-engine jobs fanned three schedulers wide
//     and executed through the lane executor at width 1 (scalar) vs width 8
//     (lockstep lanes, shared decode); reports the sweep speedup.
//  2. Stepping throughput — one pair run under the proposed scheduler with
//     per-cycle ticking vs. batched stepping; reports simulated cycles/sec
//     and committed instructions/sec for both, plus the speedup.
//  3. End-to-end — a Fig. 7-style comparison (HPE model fit + proposed vs.
//     HPE over all pairs) timed cold (empty RunCache) and warm (memoized);
//     the warm/cold ratio is what a bench rerun actually experiences.
//  4. Decision-trace overhead — the part-2 batched run repeated with the
//     decision-trace ring force-armed; the delta is what AMPS_TRACE costs.
//
// Results go to stdout and to BENCH_throughput.json in the working
// directory (machine-readable, for tracking perf across changes;
// scripts/check_perf.sh gates on cold_fast_step_rate).
//
// Knobs: AMPS_SCALE, AMPS_PAIRS, AMPS_SEED, AMPS_THREADS, AMPS_CACHE_DIR.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "common/trace.hpp"
#include "harness/lanes.hpp"
#include "harness/parallel.hpp"
#include "harness/run_cache.hpp"
#include "sim/core_config.hpp"

namespace {

struct SteppingResult {
  double seconds = 0.0;
  double cycles_per_sec = 0.0;
  double commits_per_sec = 0.0;
  std::uint64_t swaps = 0;
};

}  // namespace

int main() {
  using namespace amps;
  const auto ctx = bench::make_context(/*default_pairs=*/8);
  bench::print_header("Simulation throughput — batched stepping & run cache",
                      ctx);

  const wl::BenchmarkCatalog catalog;
  const auto pairs = harness::sample_pairs(catalog, ctx.pairs, ctx.seed);

  auto time_runner = [&](harness::ExperimentRunner& runner) {
    SteppingResult r;
    std::uint64_t cycles = 0;
    std::uint64_t commits = 0;
    const bench::Stopwatch watch;
    for (const auto& pair : pairs) {
      // Scheduler& overload: no caching, every run simulates.
      auto scheduler = runner.proposed_factory()();
      const auto result = runner.run_pair(pair, *scheduler);
      cycles += result.total_cycles;
      commits += result.threads[0].committed + result.threads[1].committed;
      r.swaps += result.swap_count;
    }
    r.seconds = watch.seconds();
    r.cycles_per_sec = static_cast<double>(cycles) / r.seconds;
    r.commits_per_sec = static_cast<double>(commits) / r.seconds;
    return r;
  };

  // --- part 1: cold-run core model, reference vs fast engine -------------
  auto measure_engine = [&](bool fast) {
    sim::CoreConfig big = sim::int_core_config();
    sim::CoreConfig little = sim::fp_core_config();
    big.fast_engine = fast;
    little.fast_engine = fast;
    harness::ExperimentRunner runner(ctx.scale, big, little);
    return time_runner(runner);
  };

  std::cout << "[cold core-model runs, " << pairs.size()
            << " pair(s), reference vs fast engine...]\n";
  const SteppingResult cold_ref = measure_engine(/*fast=*/false);
  const SteppingResult cold_fast = measure_engine(/*fast=*/true);
  const double engine_speedup = cold_ref.seconds / cold_fast.seconds;

  Table engine({"core engine (cold)", "wall s", "sim cycles/s", "commits/s"});
  engine.row()
      .cell("reference")
      .cell(cold_ref.seconds, 3)
      .cell(cold_ref.cycles_per_sec, 0)
      .cell(cold_ref.commits_per_sec, 0);
  engine.row()
      .cell("fast (AMPS_FAST_CORE)")
      .cell(cold_fast.seconds, 3)
      .cell(cold_fast.cycles_per_sec, 0)
      .cell(cold_fast.commits_per_sec, 0);
  bench::emit("throughput_engine", engine);
  std::cout << "fast-engine cold-run speedup: " << engine_speedup << "x\n\n";

  // --- part 1b: micro-op trace capture / replay (second-cold runs) -------
  // Point the trace store at a scratch directory in the working dir so the
  // bench is hermetic, capture on a first-cold pass, then replay.
  const std::string trace_dir = "amps_bench_traces";
  std::filesystem::remove_all(trace_dir);
  ::setenv("AMPS_TRACE_DIR", trace_dir.c_str(), /*overwrite=*/1);
  std::cout << "[same fast-engine runs, first-cold (trace capture)...]\n";
  const SteppingResult cold_capture = measure_engine(/*fast=*/true);
  std::cout << "[same fast-engine runs, second-cold (trace replay)...]\n";
  const SteppingResult cold_replay = measure_engine(/*fast=*/true);
  ::unsetenv("AMPS_TRACE_DIR");
  const double capture_overhead_pct =
      cold_fast.seconds > 0.0
          ? (cold_capture.seconds / cold_fast.seconds - 1.0) * 100.0
          : 0.0;
  const double replay_speedup = cold_fast.seconds / cold_replay.seconds;
  const double replay_speedup_vs_ref = cold_ref.seconds / cold_replay.seconds;

  Table replay({"trace store (cold)", "wall s", "sim cycles/s", "commits/s"});
  replay.row()
      .cell("first-cold (capture)")
      .cell(cold_capture.seconds, 3)
      .cell(cold_capture.cycles_per_sec, 0)
      .cell(cold_capture.commits_per_sec, 0);
  replay.row()
      .cell("second-cold (replay)")
      .cell(cold_replay.seconds, 3)
      .cell(cold_replay.cycles_per_sec, 0)
      .cell(cold_replay.commits_per_sec, 0);
  bench::emit("throughput_replay", replay);
  std::cout << "trace-replay second-cold speedup: " << replay_speedup
            << "x vs live fast engine, " << replay_speedup_vs_ref
            << "x vs reference engine (capture overhead "
            << capture_overhead_pct << "%)\n\n";
  std::filesystem::remove_all(trace_dir);

  double lane_scalar_seconds = 0.0;
  double lanes_seconds = 0.0;
  double lane_speedup_vs_scalar = 0.0;
  double lane_occupancy_pct = 100.0;

  // --- part 1c: lane engine, lockstep lanes vs scalar sweep --------------
  // Same cold fast-engine workload fanned three schedulers wide (proposed,
  // round-robin, static — one LanePairJob per pair x scheduler, Scheduler&
  // form so nothing caches), executed once at lane width 1 (today's scalar
  // fast path) and once at width 8 (lockstep lanes with shared decode).
  {
    sim::CoreConfig big = sim::int_core_config();
    sim::CoreConfig little = sim::fp_core_config();
    big.fast_engine = true;
    little.fast_engine = true;
    const harness::ExperimentRunner runner(ctx.scale, big, little);
    const harness::SchedulerFactory factories[] = {
        runner.proposed_factory(), runner.round_robin_factory(),
        runner.static_factory()};
    struct LaneResult {
      double seconds = 0.0;
      double occupancy_pct = 100.0;
    };
    auto measure_lanes = [&](std::size_t width) {
      std::vector<std::unique_ptr<sched::Scheduler>> owners;
      std::vector<harness::LanePairJob> jobs;
      for (const auto& pair : pairs) {
        for (const auto& factory : factories) {
          owners.push_back(factory());
          jobs.push_back(harness::LanePairJob{&runner, pair, nullptr,
                                              owners.back().get(), nullptr});
        }
      }
      LaneResult r;
      const bench::Stopwatch watch;
      const auto results = harness::run_pair_jobs(jobs, width);
      r.seconds = watch.seconds();
      double occ = 0.0;
      for (const auto& result : results) occ += result.lane_occupancy_pct;
      r.occupancy_pct = results.empty()
                            ? 100.0
                            : occ / static_cast<double>(results.size());
      return r;
    };
    std::cout << "[lane sweep, " << pairs.size() * 3
              << " cold fast-engine job(s), width 1 vs 8...]\n";
    const LaneResult lane_scalar = measure_lanes(1);
    const LaneResult lane_wide = measure_lanes(8);
    const double lane_speedup = lane_wide.seconds > 0.0
                                    ? lane_scalar.seconds / lane_wide.seconds
                                    : 0.0;
    Table lanes_table({"lane width (cold)", "wall s", "occupancy %"});
    lanes_table.row()
        .cell("1 (scalar)")
        .cell(lane_scalar.seconds, 3)
        .cell(lane_scalar.occupancy_pct, 1);
    lanes_table.row()
        .cell("8 (lockstep lanes)")
        .cell(lane_wide.seconds, 3)
        .cell(lane_wide.occupancy_pct, 1);
    bench::emit("throughput_lanes", lanes_table);
    std::cout << "lane-engine sweep speedup: " << lane_speedup << "x\n\n";
    lane_scalar_seconds = lane_scalar.seconds;
    lanes_seconds = lane_wide.seconds;
    lane_speedup_vs_scalar = lane_speedup;
    lane_occupancy_pct = lane_wide.occupancy_pct;
  }

  // --- part 2: stepping throughput, per-cycle vs batched -----------------
  auto measure = [&](bool stepping) {
    harness::ExperimentRunner runner(ctx.scale);
    runner.set_batched_stepping(stepping);
    return time_runner(runner);
  };

  std::cout << "[stepping " << pairs.size()
            << " pair run(s) under the proposed scheduler...]\n";
  const SteppingResult per_cycle = measure(/*stepping=*/false);
  const SteppingResult batched = measure(/*stepping=*/true);
  const double step_speedup = per_cycle.seconds / batched.seconds;

  Table stepping({"stepping mode", "wall s", "sim cycles/s", "commits/s"});
  stepping.row()
      .cell("per-cycle tick")
      .cell(per_cycle.seconds, 3)
      .cell(per_cycle.cycles_per_sec, 0)
      .cell(per_cycle.commits_per_sec, 0);
  stepping.row()
      .cell("batched (decision hints)")
      .cell(batched.seconds, 3)
      .cell(batched.cycles_per_sec, 0)
      .cell(batched.commits_per_sec, 0);
  bench::emit("throughput_stepping", stepping);
  std::cout << "batched-stepping speedup: " << step_speedup << "x\n\n";

  // --- part 2b: batched stepping with the decision trace armed -----------
  std::cout << "[same batched run(s) with the decision-trace ring armed...]\n";
  trace::DecisionTrace::force_arm(true);
  const SteppingResult traced = measure(/*stepping=*/true);
  trace::DecisionTrace::force_arm(false);
  const double trace_overhead_pct =
      batched.seconds > 0.0 ? (traced.seconds / batched.seconds - 1.0) * 100.0
                            : 0.0;
  const double swaps_per_run =
      pairs.empty() ? 0.0
                    : static_cast<double>(batched.swaps) /
                          static_cast<double>(pairs.size());
  std::cout << "armed-trace overhead: " << trace_overhead_pct
            << "% (swaps/run: " << swaps_per_run << ")\n\n";

  // --- part 3: end-to-end Fig. 7-style, cold vs warm cache ---------------
  auto fig7_style = [&] {
    const harness::ExperimentRunner runner(ctx.scale);
    const auto models = runner.build_models(catalog);
    return harness::compare_schedulers(runner, pairs,
                                       runner.proposed_factory(),
                                       runner.hpe_factory(*models.regression));
  };

  std::cout << "[end-to-end fig7-style comparison, cold cache...]\n";
  harness::RunCache::instance().clear();
  const bench::Stopwatch cold_watch;
  const auto cold_rows = fig7_style();
  const double cold_s = cold_watch.seconds();

  std::cout << "[same comparison, warm cache...]\n";
  const bench::Stopwatch warm_watch;
  const auto warm_rows = fig7_style();
  const double warm_s = warm_watch.seconds();
  const double warm_speedup = cold_s / warm_s;

  const auto stats = harness::RunCache::instance().stats();
  Table e2e({"end-to-end run", "wall s", "speedup"});
  e2e.row().cell("cold cache").cell(cold_s, 3).cell(1.0, 2);
  e2e.row().cell("warm cache").cell(warm_s, 3).cell(warm_speedup, 2);
  bench::emit("throughput_e2e", e2e);
  std::cout << "cache: " << stats.hits << " hit(s), " << stats.misses
            << " miss(es), " << stats.disk_hits << " from disk; rows "
            << (cold_rows.size() == warm_rows.size() ? "match" : "DIFFER")
            << " in count\n";

  // --- machine-readable record -------------------------------------------
  std::ofstream json("BENCH_throughput.json");
  if (json) {
    json << "{\n"
         << "  \"scale\": \"" << (env_paper_scale() ? "paper" : "ci")
         << "\",\n"
         << "  \"pairs\": " << pairs.size() << ",\n"
         << "  \"seed\": " << ctx.seed << ",\n"
         << "  \"workers\": " << harness::default_worker_count() << ",\n"
         << "  \"run_length\": " << ctx.scale.run_length << ",\n"
         << "  \"cold_ref_seconds\": " << cold_ref.seconds << ",\n"
         << "  \"cold_ref_step_rate\": " << cold_ref.cycles_per_sec << ",\n"
         << "  \"cold_ref_commit_rate\": " << cold_ref.commits_per_sec
         << ",\n"
         << "  \"cold_fast_seconds\": " << cold_fast.seconds << ",\n"
         << "  \"cold_fast_step_rate\": " << cold_fast.cycles_per_sec << ",\n"
         << "  \"cold_fast_commit_rate\": " << cold_fast.commits_per_sec
         << ",\n"
         << "  \"fast_engine_speedup\": " << engine_speedup << ",\n"
         << "  \"cold_capture_seconds\": " << cold_capture.seconds << ",\n"
         << "  \"capture_overhead_pct\": " << capture_overhead_pct << ",\n"
         << "  \"cold_replay_seconds\": " << cold_replay.seconds << ",\n"
         << "  \"cold_replay_step_rate\": " << cold_replay.cycles_per_sec
         << ",\n"
         << "  \"cold_replay_speedup\": " << replay_speedup << ",\n"
         << "  \"cold_replay_speedup_vs_ref\": " << replay_speedup_vs_ref
         << ",\n"
         << "  \"lane_scalar_seconds\": " << lane_scalar_seconds << ",\n"
         << "  \"lanes_seconds\": " << lanes_seconds << ",\n"
         << "  \"lane_speedup_vs_scalar\": " << lane_speedup_vs_scalar
         << ",\n"
         << "  \"lane_occupancy_pct\": " << lane_occupancy_pct << ",\n"
         << "  \"per_cycle_seconds\": " << per_cycle.seconds << ",\n"
         << "  \"per_cycle_step_rate\": " << per_cycle.cycles_per_sec << ",\n"
         << "  \"per_cycle_commit_rate\": " << per_cycle.commits_per_sec
         << ",\n"
         << "  \"batched_seconds\": " << batched.seconds << ",\n"
         << "  \"batched_step_rate\": " << batched.cycles_per_sec << ",\n"
         << "  \"batched_commit_rate\": " << batched.commits_per_sec << ",\n"
         << "  \"batched_step_speedup\": " << step_speedup << ",\n"
         << "  \"swaps_per_run\": " << swaps_per_run << ",\n"
         << "  \"trace_armed_seconds\": " << traced.seconds << ",\n"
         << "  \"trace_overhead_pct\": " << trace_overhead_pct << ",\n"
         << "  \"e2e_cold_s\": " << cold_s << ",\n"
         << "  \"e2e_warm_s\": " << warm_s << ",\n"
         << "  \"e2e_warm_speedup\": " << warm_speedup << "\n"
         << "}\n";
    std::cout << "\nwrote BENCH_throughput.json\n";
  } else {
    std::cerr << "[warn] cannot write BENCH_throughput.json\n";
  }
  return 0;
}
