// Sampling-stability check (methodological addition): the paper reports
// single-sample means over 80 random pairs. Here the headline comparisons
// (proposed vs HPE, proposed vs Round-Robin) are replicated over several
// independent pair-sampling seeds; the conclusion is robust when the
// grand mean's sign and ordering hold across every seed.
#include <iostream>

#include "bench_common.hpp"
#include "harness/replication.hpp"

int main() {
  using namespace amps;
  const auto ctx = bench::make_context(/*default_pairs=*/6);
  bench::print_header("Stability — headline results across sampling seeds",
                      ctx);

  const wl::BenchmarkCatalog catalog;
  const harness::ExperimentRunner runner(ctx.scale);
  const auto models = bench::build_models(runner, catalog);

  harness::ReplicationConfig cfg;
  cfg.pairs_per_seed = ctx.pairs;

  const auto vs_hpe = harness::replicate_comparison(
      runner, catalog, runner.proposed_factory(),
      runner.hpe_factory(*models.regression), cfg);
  const auto vs_rr = harness::replicate_comparison(
      runner, catalog, runner.proposed_factory(),
      runner.round_robin_factory(), cfg);

  Table table({"comparison", "grand mean %", "stddev across seeds", "min %",
               "max %"});
  table.row()
      .cell("proposed vs HPE")
      .cell(vs_hpe.mean, 2)
      .cell(vs_hpe.stddev, 2)
      .cell(vs_hpe.min, 2)
      .cell(vs_hpe.max, 2);
  table.row()
      .cell("proposed vs Round-Robin")
      .cell(vs_rr.mean, 2)
      .cell(vs_rr.stddev, 2)
      .cell(vs_rr.min, 2)
      .cell(vs_rr.max, 2);
  bench::emit("stability", table);

  std::cout << "\nper-seed means (vs HPE):";
  for (double v : vs_hpe.per_seed_mean_weighted_pct)
    std::cout << " " << format_double(v, 2);
  std::cout << "\nper-seed means (vs RR): ";
  for (double v : vs_rr.per_seed_mean_weighted_pct)
    std::cout << " " << format_double(v, 2);
  std::cout << "\n\nRobust when: both grand means positive and vs-RR > "
               "vs-HPE in every seed's ordering.\n";
  return 0;
}
