// Swap-only vs core morphing — the design question this paper answers
// (§III): the authors' earlier work [5] morphs the cores' datapaths to
// build one strong core when thread diversity is low; this paper argues a
// swap-only scheme avoids the morphing hardware. This bench runs both on
// (a) same-flavor pairs (morphing's home turf) and (b) mixed-flavor pairs,
// reporting weighted IPC/Watt improvement over the static baseline.
//
// Expected shape: morphing wins or ties on same-flavor pairs (the strong
// core serves the shared bottleneck), while on mixed pairs the swap-only
// scheme matches it without the morphing leakage premium — the trade-off
// the paper's §III cites as its motivation.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/morphing.hpp"
#include "core/proposed.hpp"
#include "mathx/stats.hpp"
#include "metrics/speedup.hpp"

namespace {

using namespace amps;

harness::SchedulerFactory morph_factory(const sim::SimScale& scale) {
  sched::MorphConfig cfg;
  cfg.window_size = scale.window_size;
  cfg.history_depth = scale.history_depth;
  cfg.swap_overhead = scale.swap_overhead;
  cfg.morph_overhead = scale.swap_overhead * 5;
  cfg.fairness_interval = scale.context_switch_interval;
  return [cfg] { return std::make_unique<sched::MorphScheduler>(cfg); };
}

/// Weighted IPC (not IPC/Watt) speedup of `test` over `base` — makes the
/// performance-vs-power trade of morphing visible.
double weighted_ipc_improvement(const metrics::PairRunResult& test,
                                const metrics::PairRunResult& base) {
  double acc = 0.0;
  for (int i = 0; i < 2; ++i)
    acc += test.threads[i].ipc / base.threads[i].ipc;
  return metrics::to_improvement_pct(acc / 2.0);
}

void run_group(const harness::ExperimentRunner& runner,
               const std::vector<harness::BenchmarkPair>& pairs,
               const char* title, const char* slug) {
  const auto proposed = runner.proposed_factory();
  const auto morphing = morph_factory(runner.scale());

  Table table({"pair", "swap IPC/W %", "morph IPC/W %", "swap IPC %",
               "morph IPC %"});
  std::vector<double> swap_only, morph, swap_perf, morph_perf;
  for (const auto& pair : pairs) {
    const auto base = runner.run_pair(pair, runner.static_factory());
    const auto s = runner.run_pair(pair, proposed);
    const auto m = runner.run_pair(pair, morphing);
    const double sv =
        metrics::to_improvement_pct(s.weighted_ipw_speedup_vs(base));
    const double mv =
        metrics::to_improvement_pct(m.weighted_ipw_speedup_vs(base));
    const double sp = weighted_ipc_improvement(s, base);
    const double mp = weighted_ipc_improvement(m, base);
    swap_only.push_back(sv);
    morph.push_back(mv);
    swap_perf.push_back(sp);
    morph_perf.push_back(mp);
    table.row()
        .cell(harness::pair_label(pair))
        .cell(sv, 2)
        .cell(mv, 2)
        .cell(sp, 2)
        .cell(mp, 2);
  }
  std::cout << title << ":\n";
  bench::emit(slug, table);
  std::cout << "  means: IPC/Watt swap-only " << mathx::mean(swap_only)
            << "% vs morphing " << mathx::mean(morph) << "%;  IPC swap-only "
            << mathx::mean(swap_perf) << "% vs morphing "
            << mathx::mean(morph_perf) << "%\n\n";
}

}  // namespace

int main() {
  const auto ctx = bench::make_context(0);
  bench::print_header("§III — swap-only (this paper) vs core morphing [5]",
                      ctx);

  const wl::BenchmarkCatalog catalog;
  const harness::ExperimentRunner runner(ctx.scale);

  const std::vector<harness::BenchmarkPair> same_flavor = {
      {&catalog.by_name("bitcount"), &catalog.by_name("sha")},
      {&catalog.by_name("CRC32"), &catalog.by_name("gzip")},
      {&catalog.by_name("intstress"), &catalog.by_name("rijndael")},
      {&catalog.by_name("equake"), &catalog.by_name("swim")},
      {&catalog.by_name("ammp"), &catalog.by_name("fpstress")},
  };
  const std::vector<harness::BenchmarkPair> mixed_flavor = {
      {&catalog.by_name("bitcount"), &catalog.by_name("equake")},
      {&catalog.by_name("fpstress"), &catalog.by_name("sha")},
      {&catalog.by_name("swim"), &catalog.by_name("CRC32")},
      {&catalog.by_name("apsi"), &catalog.by_name("gzip")},
      {&catalog.by_name("phaseshift"), &catalog.by_name("mcf")},
  };

  run_group(runner, same_flavor, "same-flavor pairs (morphing's target)",
            "morphing_same_flavor");
  run_group(runner, mixed_flavor, "mixed-flavor pairs (swapping suffices)",
            "morphing_mixed_flavor");

  std::cout << "Reading: morphing buys raw performance on same-flavor "
               "pairs (its strong core serves the shared bottleneck) but "
               "pays a standing leakage premium for the reconfiguration "
               "hardware, so on the *performance-per-watt* metric the "
               "swap-only scheme holds its own — the §III trade-off that "
               "motivates this paper.\n";
  return 0;
}
