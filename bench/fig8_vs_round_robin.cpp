// Paper Fig. 8: per-combination weighted and geometric IPC/Watt
// improvement of the proposed scheme over Round-Robin scheduling, plus the
// §VII side experiment: Round-Robin at a 1x vs 2x context-switch decision
// interval (the paper finds 1x performs better and uses it in Fig. 8).
#include <iostream>

#include "bench_common.hpp"
#include "mathx/stats.hpp"

int main() {
  using namespace amps;
  const auto ctx = bench::make_context(/*default_pairs=*/12);
  bench::print_header(
      "Fig. 8 — proposed vs Round-Robin, per multiprogrammed workload", ctx);

  const wl::BenchmarkCatalog catalog;
  const harness::ExperimentRunner runner(ctx.scale);
  const auto pairs = harness::sample_pairs(catalog, ctx.pairs, ctx.seed);

  // --- §VII: RR decision interval 1x vs 2x ------------------------------
  {
    const auto rr_1x_vs_2x = harness::compare_schedulers(
        runner, pairs, runner.round_robin_factory(1),
        runner.round_robin_factory(2));
    std::vector<double> w;
    for (const auto& r : rr_1x_vs_2x) w.push_back(r.weighted_improvement_pct);
    std::cout << "Round-Robin interval check: 1x vs 2x context-switch period "
                 "-> mean weighted improvement "
              << mathx::mean(w) << "% (paper: 1x performs better)\n\n";
  }

  // --- main comparison ---------------------------------------------------
  const auto rows = harness::compare_schedulers(
      runner, pairs, runner.proposed_factory(), runner.round_robin_factory(1));
  bench::warn_truncations(rows);

  Table table({"workload pair", "weighted %", "geometric %"});
  for (const std::size_t i : harness::select_worst_mid_best(rows, 10)) {
    table.row()
        .cell(rows[i].label)
        .cell(rows[i].weighted_improvement_pct, 2)
        .cell(rows[i].geometric_improvement_pct, 2);
  }
  bench::emit("fig8", table);

  std::vector<double> weighted, geometric;
  int degraded = 0;
  for (const auto& r : rows) {
    weighted.push_back(r.weighted_improvement_pct);
    geometric.push_back(r.geometric_improvement_pct);
    if (r.weighted_improvement_pct < 0.0) ++degraded;
  }
  std::cout << "\nacross all " << rows.size()
            << " pairs: mean weighted = " << mathx::mean(weighted)
            << "%  mean geometric = " << mathx::mean(geometric)
            << "%  degraded pairs = " << degraded << "/" << rows.size()
            << "\n";
  std::cout << "Paper: mean weighted ~12.9%, geometric ~12.4%, ~7.5% of "
               "pairs degrade slightly.\n";
  return 0;
}
