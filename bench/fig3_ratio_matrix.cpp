// Paper Fig. 3: the HPE performance/watt ratio matrix. 5x5 bins over
// (%INT, %FP); each cell is the statistical mode of the IPC/Watt ratio
// (INT core / FP core) observed while profiling the nine representative
// benchmarks at context-switch-interval granularity.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace amps;
  const auto ctx = bench::make_context(0);
  bench::print_header("Fig. 3 — HPE IPC/Watt ratio matrix (INT core / FP core)",
                      ctx);

  const wl::BenchmarkCatalog catalog;
  const harness::ExperimentRunner runner(ctx.scale);
  const auto models = bench::build_models(runner, catalog);
  std::cout << "profiling samples: " << models.samples.size() << "\n\n";

  const auto& m = *models.matrix;
  Table values({"INT% \\ FP%", "0-20", ">20-40", ">40-60", ">60-80", ">80-100"});
  Table counts({"INT% \\ FP%", "0-20", ">20-40", ">40-60", ">60-80", ">80-100"});
  const char* row_labels[] = {"0-20", ">20-40", ">40-60", ">60-80", ">80-100"};
  for (int r = 0; r < m.bins(); ++r) {
    values.row().cell(row_labels[r]);
    counts.row().cell(row_labels[r]);
    for (int c = 0; c < m.bins(); ++c) {
      values.cell(m.cell(r, c), 2);
      counts.cell(static_cast<long long>(m.cell_count(r, c)));
    }
  }
  std::cout << "cell = mode of observed ratios (>1: INT core wins):\n";
  bench::emit("fig3_values", values);
  std::cout << "\nraw observations per cell (0 = filled from nearest "
               "neighbor):\n";
  bench::emit("fig3_counts", counts);

  std::cout << "\nSpot checks (paper example: 80% INT / 2% FP -> ~1.3):\n";
  std::cout << "  predict(80, 2)  = " << m.predict_ratio(80, 2) << "\n";
  std::cout << "  predict(10, 55) = " << m.predict_ratio(10, 55) << "\n";
  return 0;
}
