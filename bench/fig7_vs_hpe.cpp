// Paper Fig. 7: per-combination weighted and geometric IPC/Watt
// improvement of the proposed dynamic scheduling scheme over the HPE
// scheme. The paper plots 30 of its 80 random pairs: the 10 worst, 10
// around the middle and the 10 best by weighted improvement.
#include <iostream>

#include "bench_common.hpp"
#include "mathx/stats.hpp"

int main() {
  using namespace amps;
  const auto ctx = bench::make_context(/*default_pairs=*/12);
  bench::print_header("Fig. 7 — proposed vs HPE, per multiprogrammed workload",
                      ctx);

  const wl::BenchmarkCatalog catalog;
  const harness::ExperimentRunner runner(ctx.scale);
  const auto models = bench::build_models(runner, catalog);
  const auto pairs = harness::sample_pairs(catalog, ctx.pairs, ctx.seed);

  const auto rows = harness::compare_schedulers(
      runner, pairs, runner.proposed_factory(),
      runner.hpe_factory(*models.regression));
  bench::warn_truncations(rows);

  Table table({"workload pair", "weighted %", "geometric %",
               "swap fraction % (proposed)"});
  const auto shown = harness::select_worst_mid_best(rows, 10);
  for (const std::size_t i : shown) {
    table.row()
        .cell(rows[i].label)
        .cell(rows[i].weighted_improvement_pct, 2)
        .cell(rows[i].geometric_improvement_pct, 2)
        .cell(rows[i].swap_fraction * 100.0, 3);
  }
  bench::emit("fig7", table);

  std::vector<double> weighted, geometric;
  int degraded = 0;
  for (const auto& r : rows) {
    weighted.push_back(r.weighted_improvement_pct);
    geometric.push_back(r.geometric_improvement_pct);
    if (r.weighted_improvement_pct < 0.0) ++degraded;
  }
  std::cout << "\nacross all " << rows.size()
            << " pairs: mean weighted = " << mathx::mean(weighted)
            << "%  mean geometric = " << mathx::mean(geometric)
            << "%  degraded pairs = " << degraded << "/" << rows.size()
            << "\n";
  std::cout << "Paper: mean weighted ~10.5% (abstract OCR prints '1.5%'), "
               "geometric ~9.1%, ~8.75% of pairs degrade slightly.\n";
  return 0;
}
