// Paper Fig. 9: worst-5 / overall-average / best-5 weighted IPC/Watt
// improvements of the proposed scheme over both the HPE and Round-Robin
// schemes, across the random pair set. Also reports the §VI-D swap-rate
// statistic (swaps at far fewer than 1% of decision points).
#include <iostream>

#include "bench_common.hpp"
#include "mathx/stats.hpp"

int main() {
  using namespace amps;
  const auto ctx = bench::make_context(/*default_pairs=*/12);
  bench::print_header(
      "Fig. 9 — worst/average/best IPC/Watt improvement vs HPE and RR", ctx);

  const wl::BenchmarkCatalog catalog;
  const harness::ExperimentRunner runner(ctx.scale);
  const auto models = bench::build_models(runner, catalog);
  const auto pairs = harness::sample_pairs(catalog, ctx.pairs, ctx.seed);

  const auto vs_hpe = harness::compare_schedulers(
      runner, pairs, runner.proposed_factory(),
      runner.hpe_factory(*models.regression));
  const auto vs_rr = harness::compare_schedulers(
      runner, pairs, runner.proposed_factory(), runner.round_robin_factory());
  bench::warn_truncations(vs_hpe);
  bench::warn_truncations(vs_rr);

  auto summarize = [](const std::vector<harness::ComparisonRow>& rows) {
    std::vector<double> w;
    for (const auto& r : rows) w.push_back(r.weighted_improvement_pct);
    return std::tuple{mathx::mean_lowest(w, 5), mathx::mean(w),
                      mathx::mean_highest(w, 5)};
  };
  const auto [hpe_worst, hpe_mean, hpe_best] = summarize(vs_hpe);
  const auto [rr_worst, rr_mean, rr_best] = summarize(vs_rr);

  Table table({"case", "vs HPE %", "vs Round-Robin %"});
  table.row().cell("5 worst cases (mean)").cell(hpe_worst, 2).cell(rr_worst, 2);
  table.row().cell("average of all cases").cell(hpe_mean, 2).cell(rr_mean, 2);
  table.row().cell("5 best cases (mean)").cell(hpe_best, 2).cell(rr_best, 2);
  bench::emit("fig9", table);

  // §VI-D: swap activity of the proposed scheme.
  double max_frac = 0.0;
  for (const auto& r : vs_hpe) max_frac = std::max(max_frac, r.swap_fraction);
  std::cout << "\nproposed-scheme swap activity: max "
            << max_frac * 100.0
            << "% of decision points swapped (paper: well below 1%)\n";
  std::cout << "Paper: worst ~-10%/-6%, average ~10.5%/12.9%, best "
               "~65%/45% (vs HPE / vs RR).\n";
  return 0;
}
