// Shared plumbing for the experiment benches: environment knobs, the
// standard header every binary prints, and the (expensive, shared) HPE
// model construction.
//
// Knobs:
//   AMPS_SCALE=ci|paper   simulation scale (default ci)
//   AMPS_PAIRS=<n>        number of random benchmark pairs
//   AMPS_SEED=<n>         pair-sampling seed (default 2012)
#pragma once

#include <chrono>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <span>

#include "common/env.hpp"
#include "common/table.hpp"
#include "core/hpe.hpp"
#include "harness/experiment.hpp"
#include "harness/sampler.hpp"
#include "sim/scale.hpp"
#include "workload/benchmark.hpp"

namespace amps::bench {

/// Monotonic wall-clock timer for bench sections. steady_clock is immune
/// to NTP slews and wall-clock adjustments that system_clock-based timing
/// would fold into cold-section measurements.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  /// Seconds elapsed since construction (or the last reset()).
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

struct BenchContext {
  sim::SimScale scale;
  std::uint64_t seed;
  int pairs;
};

inline BenchContext make_context(int default_pairs) {
  BenchContext ctx;
  ctx.scale = sim::SimScale::from_env();
  ctx.seed = env_seed();
  ctx.pairs = env_pairs(default_pairs);
  return ctx;
}

inline void print_header(const std::string& title, const BenchContext& ctx) {
  print_banner(std::cout, title);
  std::cout << "scale: " << (env_paper_scale() ? "paper" : "ci")
            << " (interval=" << ctx.scale.context_switch_interval
            << " cycles, run=" << ctx.scale.run_length
            << " instr, window=" << ctx.scale.window_size
            << ", history=" << ctx.scale.history_depth
            << ", overhead=" << ctx.scale.swap_overhead << " cycles)"
            << "  seed=" << ctx.seed << "  pairs=" << ctx.pairs << "\n\n";
}

/// Prints the table to stdout and, when AMPS_CSV_DIR is set, also writes
/// it to <AMPS_CSV_DIR>/<slug>.csv for plotting.
inline void emit(const std::string& slug, const Table& table) {
  table.print(std::cout);
  if (const auto dir = env_string("AMPS_CSV_DIR")) {
    std::ofstream out(*dir + "/" + slug + ".csv");
    if (out) {
      table.print_csv(out);
    } else {
      std::cerr << "[warn] cannot write " << *dir << "/" << slug << ".csv\n";
    }
  }
}

/// Profiles the nine representative benchmarks and fits both HPE models
/// (memoized: with a warm RunCache — or AMPS_CACHE_DIR — this is instant).
inline sched::HpeModels build_models(const harness::ExperimentRunner& runner,
                                     const wl::BenchmarkCatalog& catalog) {
  std::cout << "[profiling the 9 representative benchmarks on both cores"
            << " (memoized)...]" << std::endl;
  return runner.build_models(catalog);
}

/// Warns on stderr when any comparison row came from a run truncated at
/// the cycle bound — those rows carry partial (undertrusted) results.
inline void warn_truncations(std::span<const harness::ComparisonRow> rows) {
  std::size_t truncated = 0;
  for (const auto& row : rows)
    if (row.hit_cycle_bound) ++truncated;
  if (truncated > 0) {
    std::cerr << "[warn] " << truncated << "/" << rows.size()
              << " pair(s) hit the max-cycle bound before completing their "
                 "instruction budget; their rows reflect partial runs\n";
  }
}

}  // namespace amps::bench
