// Substrate ablation: does a next-line data prefetcher (absent from the
// paper's cores) change the core-affinity structure the evaluation rests
// on? Streaming FP workloads gain IPC on both cores; pointer chasers are
// untouched; the *relative* INT-vs-FP affinity — the input to every
// scheduling decision — stays intact. This supports transferring the
// paper's conclusions to cores with simple prefetchers.
#include <iostream>

#include "bench_common.hpp"
#include "harness/run_cache.hpp"
#include "sim/solo.hpp"

int main() {
  using namespace amps;
  const auto ctx = bench::make_context(0);
  bench::print_header("Substrate ablation — next-line prefetcher on/off", ctx);

  const wl::BenchmarkCatalog catalog;
  sim::CoreConfig int_plain = sim::int_core_config();
  sim::CoreConfig fp_plain = sim::fp_core_config();
  sim::CoreConfig int_pf = int_plain;
  sim::CoreConfig fp_pf = fp_plain;
  int_pf.prefetch_next_line = true;
  fp_pf.prefetch_next_line = true;

  Table table({"workload", "IPC gain INT core %", "IPC gain FP core %",
               "affinity ratio plain", "affinity ratio w/ prefetch"});
  for (const char* name :
       {"swim", "equake", "mgrid", "mcf", "dijkstra", "bitcount", "CRC32",
        "gcc"}) {
    const auto& spec = catalog.by_name(name);
    const auto i0 = harness::cached_solo(int_plain, spec, ctx.scale.run_length / 3);
    const auto i1 = harness::cached_solo(int_pf, spec, ctx.scale.run_length / 3);
    const auto f0 = harness::cached_solo(fp_plain, spec, ctx.scale.run_length / 3);
    const auto f1 = harness::cached_solo(fp_pf, spec, ctx.scale.run_length / 3);
    table.row()
        .cell(name)
        .cell(100.0 * (i1.ipc() / i0.ipc() - 1.0), 1)
        .cell(100.0 * (f1.ipc() / f0.ipc() - 1.0), 1)
        .cell(i0.ipc_per_watt() / f0.ipc_per_watt(), 3)
        .cell(i1.ipc_per_watt() / f1.ipc_per_watt(), 3);
  }
  bench::emit("prefetch_ablation", table);
  std::cout << "\nReading: streaming workloads (swim/equake/mgrid) gain "
               "substantially on both cores; pointer chasers (mcf/dijkstra) "
               "barely move; the INT/FP affinity ratios — what the "
               "schedulers act on — shift only marginally.\n";
  return 0;
}
