// §VI-D scalability claim: "The proposed dynamic thread scheduling scheme
// is a hardware-based solution which is autonomous and isolated from the
// OS level scheduler which makes it scalable." This bench sweeps N-core
// AMPs (N/2 INT + N/2 FP cores, N threads) under the N-core
// generalization of the proposed scheme (pairwise-local decisions)
// against static-assignment and rotating Round-Robin baselines, over
// random N-thread workloads, and records per-core-count cold/warm wall
// time through the RunCache plus the batched stepping rate.
//
// Results go to stdout and to BENCH_multicore.json in the working
// directory (machine-readable; scripts/check_perf.sh reports the
// cores-vs-throughput shape informationally when the file is present).
//
// Knobs: AMPS_SCALE, AMPS_PAIRS (workloads per core count), AMPS_SEED,
//        AMPS_THREADS, AMPS_CACHE_DIR,
//        AMPS_CORES=<comma list> (core counts, default 2,4,8,16).
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness/multicore.hpp"
#include "harness/parallel.hpp"
#include "harness/run_cache.hpp"
#include "mathx/stats.hpp"

namespace {

using namespace amps;

std::vector<std::size_t> core_counts_from_env() {
  std::vector<std::size_t> counts;
  const std::string spec = env_string("AMPS_CORES").value_or("2,4,8,16");
  std::istringstream in(spec);
  std::string tok;
  while (std::getline(in, tok, ',')) {
    const long v = std::strtol(tok.c_str(), nullptr, 10);
    if (v >= 2 && v % 2 == 0) counts.push_back(static_cast<std::size_t>(v));
  }
  if (counts.empty()) counts = {2, 4, 8, 16};
  return counts;
}

struct SweepPoint {
  std::size_t cores = 0;
  double cold_s = 0.0;
  double warm_s = 0.0;
  double step_rate = 0.0;  ///< affinity-run sim cycles / cold second
  double vs_static_pct = 0.0;
  double vs_rr_pct = 0.0;
  double swaps_per_run = 0.0;
};

}  // namespace

int main() {
  const auto ctx = bench::make_context(/*default_pairs=*/4);
  bench::print_header(
      "§VI-D — scalability sweep: N-core AMP (N/2 INT + N/2 FP), N threads",
      ctx);

  const wl::BenchmarkCatalog catalog;
  const auto counts = core_counts_from_env();

  Table table({"cores", "cold s", "warm s", "warm speedup", "vs static %",
               "vs RR %", "swaps/run"});
  std::vector<SweepPoint> points;
  for (const std::size_t n : counts) {
    const auto workloads = harness::sample_workloads(
        catalog, n, ctx.pairs, ctx.seed + n);  // distinct draw per count
    const harness::MulticoreRunner runner =
        harness::MulticoreRunner::canonical(ctx.scale, n);
    const auto affinity = runner.affinity_factory();
    const auto rr = runner.round_robin_factory();
    const auto stat = runner.static_factory();

    const auto sweep_once = [&] {
      struct {
        std::vector<harness::MulticoreComparisonRow> vs_static, vs_rr;
      } r;
      r.vs_static = harness::compare_multicore(runner, workloads, affinity,
                                               stat);
      // The affinity runs memoize, so the second comparison only adds the
      // Round-Robin baseline.
      r.vs_rr = harness::compare_multicore(runner, workloads, affinity, rr);
      return r;
    };

    std::cout << "[" << n << " cores, " << workloads.size()
              << " workload(s): cold sweep...]" << std::endl;
    harness::RunCache::instance().clear();
    const bench::Stopwatch cold_watch;
    const auto cold = sweep_once();
    const double cold_s = cold_watch.seconds();

    std::cout << "[" << n << " cores: warm sweep...]" << std::endl;
    const bench::Stopwatch warm_watch;
    (void)sweep_once();
    const double warm_s = warm_watch.seconds();

    SweepPoint p;
    p.cores = n;
    p.cold_s = cold_s;
    p.warm_s = warm_s;
    std::vector<double> ws, wr, swaps;
    std::uint64_t affinity_cycles = 0;
    for (const auto& row : cold.vs_static) {
      ws.push_back(row.weighted_improvement_pct);
      swaps.push_back(static_cast<double>(row.swap_count));
      affinity_cycles += row.total_cycles;
    }
    for (const auto& row : cold.vs_rr) wr.push_back(row.weighted_improvement_pct);
    p.vs_static_pct = mathx::mean(ws);
    p.vs_rr_pct = mathx::mean(wr);
    p.swaps_per_run = mathx::mean(swaps);
    p.step_rate = cold_s > 0.0
                      ? static_cast<double>(affinity_cycles) *
                            static_cast<double>(n) / cold_s
                      : 0.0;
    points.push_back(p);

    table.row()
        .cell(static_cast<long long>(n))
        .cell(cold_s, 3)
        .cell(warm_s, 3)
        .cell(warm_s > 0.0 ? cold_s / warm_s : 0.0, 1)
        .cell(p.vs_static_pct, 2)
        .cell(p.vs_rr_pct, 2)
        .cell(p.swaps_per_run, 1);
  }
  bench::emit("scalability_multicore", table);
  std::cout << "\nShape: the pairwise-local scheme keeps its IPC/Watt gains "
               "as the core count grows — the §VI-D scalability claim — "
               "while the RunCache makes warm sweeps near-instant.\n";

  // --- machine-readable record -------------------------------------------
  std::ofstream json("BENCH_multicore.json");
  if (json) {
    json << "{\n"
         << "  \"scale\": \"" << (env_paper_scale() ? "paper" : "ci")
         << "\",\n"
         << "  \"workloads_per_count\": " << ctx.pairs << ",\n"
         << "  \"seed\": " << ctx.seed << ",\n"
         << "  \"workers\": " << harness::default_worker_count() << ",\n"
         << "  \"run_length\": " << ctx.scale.run_length << ",\n"
         << "  \"core_counts\": \"";
    for (std::size_t i = 0; i < points.size(); ++i)
      json << (i ? "," : "") << points[i].cores;
    json << "\",\n";
    for (const SweepPoint& p : points) {
      const std::string k = "c" + std::to_string(p.cores);
      json << "  \"" << k << "_cold_s\": " << p.cold_s << ",\n"
           << "  \"" << k << "_warm_s\": " << p.warm_s << ",\n"
           << "  \"" << k << "_warm_speedup\": "
           << (p.warm_s > 0.0 ? p.cold_s / p.warm_s : 0.0) << ",\n"
           << "  \"" << k << "_core_cycle_rate\": " << p.step_rate << ",\n"
           << "  \"" << k << "_vs_static_pct\": " << p.vs_static_pct << ",\n"
           << "  \"" << k << "_vs_rr_pct\": " << p.vs_rr_pct << ",\n"
           << "  \"" << k << "_swaps_per_run\": " << p.swaps_per_run << ",\n";
    }
    json << "  \"counts_swept\": " << points.size() << "\n}\n";
    std::cout << "wrote BENCH_multicore.json\n";
  } else {
    std::cerr << "[warn] cannot write BENCH_multicore.json\n";
  }
  return 0;
}
