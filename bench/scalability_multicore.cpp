// §VI-D scalability claim: "The proposed dynamic thread scheduling scheme
// is a hardware-based solution which is autonomous and isolated from the
// OS level scheduler which makes it scalable." This bench runs a 4-core
// AMP (2 INT + 2 FP cores, 4 threads) under the N-core generalization of
// the proposed scheme (pairwise-local decisions) against static and
// rotating Round-Robin baselines, over random 4-thread workloads.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/global_affinity.hpp"
#include "mathx/stats.hpp"
#include "metrics/speedup.hpp"
#include "sim/multicore.hpp"

namespace {

using namespace amps;

struct QuadResult {
  std::vector<double> ipw;  // per-thread IPC/Watt, in thread-id order
};

std::vector<sim::CoreConfig> four_core_amp() {
  return {sim::int_core_config(), sim::int_core_config(),
          sim::fp_core_config(), sim::fp_core_config()};
}

template <typename Scheduler>
QuadResult run_quad(const std::vector<const wl::BenchmarkSpec*>& specs,
                    const sim::SimScale& scale, Scheduler& scheduler) {
  sim::MulticoreSystem system(four_core_amp(), scale.swap_overhead);
  std::vector<std::unique_ptr<sim::ThreadContext>> threads;
  std::vector<sim::ThreadContext*> ptrs;
  for (int i = 0; i < 4; ++i) {
    threads.push_back(std::make_unique<sim::ThreadContext>(
        i, *specs[static_cast<std::size_t>(i)]));
    ptrs.push_back(threads.back().get());
  }
  system.attach_threads(ptrs);
  scheduler.on_start(system);

  const Cycles max_cycles = scale.max_cycles();
  auto done = [&] {
    for (const auto& t : threads)
      if (t->committed_total() >= scale.run_length) return true;
    return false;
  };
  while (!done() && system.now() < max_cycles) {
    system.step();
    scheduler.tick(system);
  }

  QuadResult r;
  for (const auto& t : threads) {
    const Energy e = system.live_energy(*t);
    r.ipw.push_back(e > 0.0 ? static_cast<double>(t->committed_total()) / e
                            : 0.0);
  }
  return r;
}

struct NullScheduler {
  void on_start(sim::MulticoreSystem&) {}
  void tick(sim::MulticoreSystem&) {}
};

double weighted_improvement(const QuadResult& test, const QuadResult& base) {
  double acc = 0.0;
  for (std::size_t i = 0; i < test.ipw.size(); ++i)
    acc += test.ipw[i] / base.ipw[i];
  return metrics::to_improvement_pct(acc / static_cast<double>(test.ipw.size()));
}

}  // namespace

int main() {
  const auto ctx = bench::make_context(/*default_pairs=*/8);
  bench::print_header(
      "§VI-D — scalability: 4-core AMP (2 INT + 2 FP), 4 threads", ctx);

  const wl::BenchmarkCatalog catalog;
  // Random 4-thread workloads: reuse the pair sampler twice per workload.
  const auto pairs_a = harness::sample_pairs(catalog, ctx.pairs, ctx.seed);
  const auto pairs_b =
      harness::sample_pairs(catalog, ctx.pairs, ctx.seed ^ 0xBEEF);

  Table table({"workload (threads on cores 0..3)", "affinity vs static %",
               "affinity vs RR %", "swaps"});
  std::vector<double> vs_static, vs_rr;
  for (int w = 0; w < ctx.pairs; ++w) {
    const auto uw = static_cast<std::size_t>(w);
    const std::vector<const wl::BenchmarkSpec*> specs = {
        pairs_a[uw].first, pairs_a[uw].second, pairs_b[uw].first,
        pairs_b[uw].second};

    NullScheduler nothing;
    const QuadResult stat = run_quad(specs, ctx.scale, nothing);

    sched::MulticoreRoundRobin rr(ctx.scale.context_switch_interval);
    const QuadResult rr_result = run_quad(specs, ctx.scale, rr);

    sched::GlobalAffinityConfig cfg;
    cfg.window_size = ctx.scale.window_size;
    cfg.history_depth = ctx.scale.history_depth;
    sched::GlobalAffinityScheduler affinity(cfg);
    const QuadResult aff = run_quad(specs, ctx.scale, affinity);

    const double ws = weighted_improvement(aff, stat);
    const double wr = weighted_improvement(aff, rr_result);
    vs_static.push_back(ws);
    vs_rr.push_back(wr);
    table.row()
        .cell(specs[0]->name + "+" + specs[1]->name + "+" + specs[2]->name +
              "+" + specs[3]->name)
        .cell(ws, 2)
        .cell(wr, 2)
        .cell(static_cast<long long>(affinity.swaps_requested()));
  }
  bench::emit("scalability_multicore", table);
  std::cout << "\nmeans: vs static " << mathx::mean(vs_static)
            << "%   vs Round-Robin " << mathx::mean(vs_rr) << "%\n";
  std::cout << "Shape: the pairwise-local scheme keeps its gains at 4 cores "
               "— the scalability §VI-D claims.\n";
  return 0;
}
