// amps-serve load generator: saturation throughput at paper-scale client
// counts, with exactly-once accounting.
//
//  1. Cold serve — 256 concurrent clients (1024 at AMPS_SCALE=paper) fire
//     a fixed request set at an in-process epoll TcpServer with an empty
//     RunCache; the distinct configurations are simulated once.
//  2. Warm serve — the identical set again, every answer a cache hit: the
//     requests/sec here is the transport's saturation throughput, since
//     no simulation time hides connection handling costs.
//  3. Sharded serve — the same warm set through a ShardRouter over two
//     in-process single-shard servers (run requests route by content key,
//     responses relay back verbatim).
//
// Every phase accounts for requests exactly once: each response's id must
// echo its request, every request must be answered, and the only accepted
// rejection is the retriable "queue_full" backpressure error, which the
// generator retries with backoff (and counts). The 1-shard responses are
// also checked byte-identical against direct ExperimentRunner
// recomputation — the epoll rewrite must not perturb a single byte.
//
// Results go to stdout and BENCH_loadgen.json in the working directory.
// Knobs: AMPS_SCALE, AMPS_PAIRS, AMPS_SEED, AMPS_THREADS.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "harness/parallel.hpp"
#include "harness/run_cache.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "service/shard.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using amps::service::Json;

struct PhaseStats {
  double seconds = 0.0;
  double rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::size_t answered = 0;       ///< ok responses with the matching id
  std::size_t queue_full = 0;     ///< retriable rejections (retried)
  std::size_t protocol_errors = 0;  ///< anything else — must stay 0
};

double percentile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

/// `clients` concurrent connections, request i on client i % clients,
/// synchronous per client. queue_full responses are retried with backoff
/// until the request is truly answered; the response id must echo the
/// request id (ids are the request index), which is what "answered
/// exactly once" means from the client's side.
PhaseStats run_phase(std::uint16_t port, const std::vector<std::string>& lines,
                     std::size_t clients,
                     std::vector<std::string>* responses) {
  responses->assign(lines.size(), std::string());
  std::vector<PhaseStats> per_client(clients);
  std::vector<std::vector<double>> latencies(clients);
  const amps::bench::Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      amps::service::LineClient client;
      client.connect(port);
      for (std::size_t i = c; i < lines.size(); i += clients) {
        const auto t0 = Clock::now();
        for (int attempt = 0;; ++attempt) {
          const std::string resp = client.request(lines[i]);
          const Json doc = Json::parse(resp);
          if (doc.get("ok").as_bool(false)) {
            if (static_cast<std::size_t>(
                    doc.get("id").as_number(-1.0)) == i)
              per_client[c].answered++;
            else
              per_client[c].protocol_errors++;
            (*responses)[i] = resp;
            break;
          }
          if (doc.get("error").get("code").as_string() == "queue_full" &&
              attempt < 1000) {
            per_client[c].queue_full++;
            std::this_thread::sleep_for(std::chrono::microseconds(
                200 * (1 + std::min(attempt, 20))));
            continue;
          }
          per_client[c].protocol_errors++;
          (*responses)[i] = resp;
          break;
        }
        latencies[c].push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - t0)
                .count());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  PhaseStats stats;
  stats.seconds = watch.seconds();
  stats.rps = static_cast<double>(lines.size()) / stats.seconds;
  for (const PhaseStats& pc : per_client) {
    stats.answered += pc.answered;
    stats.queue_full += pc.queue_full;
    stats.protocol_errors += pc.protocol_errors;
  }
  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  stats.p50_us = percentile(all, 0.50);
  stats.p99_us = percentile(all, 0.99);
  return stats;
}

std::string result_of(const std::string& response) {
  std::string error;
  const Json doc = Json::parse(response, &error);
  if (!error.empty() || !doc.get("ok").as_bool(false)) return "<error>";
  return doc.get("result").dump();
}

void raise_nofile_limit() {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) == 0 && lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &lim);
  }
}

std::uint64_t dropped_counter() {
  return amps::stats::Registry::instance()
      .counter("service.responses_dropped")
      .value();
}

}  // namespace

int main() {
  using namespace amps;
  raise_nofile_limit();
  const auto ctx = bench::make_context(/*default_pairs=*/2);
  bench::print_header("amps-serve load generator — saturation + shards",
                      ctx);

  // Paper scale runs the full 1k-client closed-loop; CI keeps the same
  // shape at 256 clients so the run fits the smoke budget.
  const std::size_t clients = env_paper_scale() ? 1024 : 256;
  const std::size_t per_client = 4;

  const wl::BenchmarkCatalog catalog;
  const auto pairs = harness::sample_pairs(catalog, ctx.pairs, ctx.seed);
  const std::vector<std::string> schedulers = {"proposed", "static",
                                               "round-robin"};

  // A small distinct-config pool repeated across the id space: the cold
  // phase simulates each config once; afterwards every request is a cache
  // hit and the bench measures the serving layer, not the simulator.
  std::vector<std::string> configs;
  for (const auto& pair : pairs) {
    for (const std::string& sched : schedulers) {
      Json req = Json::object();
      req.set("op", Json("run_pair"));
      Json bench_names = Json::array();
      bench_names.push_back(Json(pair.first->name));
      bench_names.push_back(Json(pair.second->name));
      req.set("bench", std::move(bench_names));
      req.set("scheduler", Json(sched));
      req.set("scale", Json(env_paper_scale() ? "paper" : "ci"));
      configs.push_back(req.dump());
    }
  }
  std::vector<std::string> lines;
  lines.reserve(clients * per_client);
  for (std::size_t i = 0; i < clients * per_client; ++i) {
    Json req = Json::parse(configs[i % configs.size()]);
    req.set("id", Json(static_cast<std::uint64_t>(i)));
    lines.push_back(req.dump());
  }
  std::cout << "[" << lines.size() << " request(s) over " << configs.size()
            << " distinct config(s) from " << clients
            << " concurrent client(s)]\n\n";

  const std::uint64_t dropped_before = dropped_counter();

  // --- phases 1+2: cold, then warm, on one epoll server ------------------
  harness::RunCache::instance().clear();
  service::SimulationService svc;
  service::TcpServer server(svc, /*port=*/0);
  std::vector<std::string> cold_responses;
  const PhaseStats cold =
      run_phase(server.port(), lines, clients, &cold_responses);
  std::vector<std::string> warm_responses;
  const PhaseStats warm =
      run_phase(server.port(), lines, clients, &warm_responses);

  // --- phase 3: the warm set through a 2-shard router ---------------------
  // In-process workers (forking would re-exec the bench binary); routing
  // and relaying behave exactly as in the multi-process deployment.
  service::SimulationService shard_svc_a;
  service::SimulationService shard_svc_b;
  service::TcpServer shard_a(shard_svc_a, /*port=*/0);
  service::TcpServer shard_b(shard_svc_b, /*port=*/0);
  service::ShardRouter router({shard_a.port(), shard_b.port()},
                              /*port=*/0);
  std::vector<std::string> shard_responses;
  const PhaseStats sharded =
      run_phase(router.port(), lines, clients, &shard_responses);

  bool shard_identical = true;
  for (std::size_t i = 0; i < lines.size(); ++i)
    shard_identical = shard_identical && result_of(warm_responses[i]) ==
                                             result_of(shard_responses[i]);

  Table phases({"load phase", "wall s", "req/s", "p50 us", "p99 us",
                "queue_full"});
  const auto add_row = [&](const char* name, const PhaseStats& s) {
    phases.row()
        .cell(name)
        .cell(s.seconds, 3)
        .cell(s.rps, 1)
        .cell(s.p50_us, 0)
        .cell(s.p99_us, 0)
        .cell(static_cast<double>(s.queue_full), 0);
  };
  add_row("cold 1-shard", cold);
  add_row("warm 1-shard", warm);
  add_row("warm 2-shard", sharded);
  bench::emit("loadgen_phases", phases);

  // --- exactly-once + bit-identity verdicts -------------------------------
  const std::size_t expected = lines.size();
  const bool exactly_once =
      cold.answered == expected && warm.answered == expected &&
      sharded.answered == expected && cold.protocol_errors == 0 &&
      warm.protocol_errors == 0 && sharded.protocol_errors == 0;

  harness::RunCache::instance().clear();
  bool bit_identical = true;
  {
    const harness::ExperimentRunner runner(ctx.scale);
    std::size_t i = 0;
    for (const auto& pair : pairs) {
      for (const std::string& sched : schedulers) {
        const harness::SchedulerFactory factory =
            sched == "proposed"  ? runner.proposed_factory()
            : sched == "static"  ? runner.static_factory()
                                 : runner.round_robin_factory();
        const std::string direct =
            service::to_json(runner.run_pair(pair, factory)).dump();
        bit_identical =
            bit_identical && direct == result_of(cold_responses[i]);
        ++i;
      }
    }
  }
  const std::uint64_t dropped = dropped_counter() - dropped_before;

  std::cout << "exactly-once: "
            << (exactly_once ? "every request answered once"
                             : "VIOLATED — see counts")
            << " (" << cold.queue_full + warm.queue_full + sharded.queue_full
            << " retriable queue_full retries)\n"
            << "served vs direct results: "
            << (bit_identical ? "byte-identical" : "DIFFER") << "\n"
            << "1-shard vs 2-shard results: "
            << (shard_identical ? "byte-identical" : "DIFFER") << "\n"
            << "responses dropped server-side: " << dropped << "\n";

  // --- machine-readable record -------------------------------------------
  std::ofstream json("BENCH_loadgen.json");
  if (json) {
    json << "{\n"
         << "  \"scale\": \"" << (env_paper_scale() ? "paper" : "ci")
         << "\",\n"
         << "  \"pairs\": " << pairs.size() << ",\n"
         << "  \"seed\": " << ctx.seed << ",\n"
         << "  \"workers\": " << harness::default_worker_count() << ",\n"
         << "  \"clients\": " << clients << ",\n"
         << "  \"requests\": " << lines.size() << ",\n"
         << "  \"distinct_configs\": " << configs.size() << ",\n"
         << "  \"cold_seconds\": " << cold.seconds << ",\n"
         << "  \"cold_rps\": " << cold.rps << ",\n"
         << "  \"cold_p50_us\": " << cold.p50_us << ",\n"
         << "  \"cold_p99_us\": " << cold.p99_us << ",\n"
         << "  \"warm_seconds\": " << warm.seconds << ",\n"
         << "  \"warm_rps\": " << warm.rps << ",\n"
         << "  \"warm_p50_us\": " << warm.p50_us << ",\n"
         << "  \"warm_p99_us\": " << warm.p99_us << ",\n"
         << "  \"shard_seconds\": " << sharded.seconds << ",\n"
         << "  \"shard_rps\": " << sharded.rps << ",\n"
         << "  \"shard_p50_us\": " << sharded.p50_us << ",\n"
         << "  \"shard_p99_us\": " << sharded.p99_us << ",\n"
         << "  \"shards\": 2,\n"
         << "  \"queue_full_retries\": "
         << cold.queue_full + warm.queue_full + sharded.queue_full << ",\n"
         << "  \"responses_dropped\": " << dropped << ",\n"
         << "  \"exactly_once\": " << (exactly_once ? "true" : "false")
         << ",\n"
         << "  \"shard_identical\": " << (shard_identical ? "true" : "false")
         << ",\n"
         << "  \"bit_identical\": " << (bit_identical ? "true" : "false")
         << "\n}\n";
    std::cout << "\nwrote BENCH_loadgen.json\n";
  } else {
    std::cerr << "[warn] cannot write BENCH_loadgen.json\n";
  }
  return (exactly_once && bit_identical && shard_identical) ? 0 : 1;
}
