// Paper §VIII generality claim: "The methodology described here for an INT
// and FP cores can be followed for other types of asymmetric cores."
// This bench builds a big/little AMP (the HPE paper's original asymmetry
// style) and compares static, Round-Robin and the utility-factor scheduler
// (Saez et al. [16]-style, driven by the same hardware counters the
// proposed scheme uses). Expected shape: the utility scheduler steers the
// compute-bound thread to the big core and beats both baselines on
// IPC/Watt whenever the pairing is heterogeneous in memory-boundedness.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/round_robin.hpp"
#include "core/utility.hpp"
#include "mathx/stats.hpp"
#include "metrics/speedup.hpp"

int main() {
  using namespace amps;
  const auto ctx = bench::make_context(/*default_pairs=*/10);
  bench::print_header("§VIII — generality: big/little AMP with a utility-factor scheduler",
                      ctx);

  const wl::BenchmarkCatalog catalog;
  const harness::ExperimentRunner runner(ctx.scale, sim::big_core_config(),
                                         sim::little_core_config());
  const auto pairs = harness::sample_pairs(catalog, ctx.pairs, ctx.seed);

  auto utility_factory = [&]() {
    sched::UtilityConfig cfg;
    cfg.decision_interval = ctx.scale.context_switch_interval;
    cfg.big_core_index = 0;
    return harness::SchedulerFactory(
        [cfg] { return std::make_unique<sched::UtilityScheduler>(cfg); });
  };

  Table table({"workload pair", "utility vs static %", "utility vs RR %"});
  std::vector<double> vs_static, vs_rr;
  for (const auto& pair : pairs) {
    const auto stat = runner.run_pair(pair, runner.static_factory());
    const auto rr = runner.run_pair(pair, runner.round_robin_factory());
    const auto util = runner.run_pair(pair, utility_factory());
    const double ws = metrics::to_improvement_pct(
        util.weighted_ipw_speedup_vs(stat));
    const double wr =
        metrics::to_improvement_pct(util.weighted_ipw_speedup_vs(rr));
    vs_static.push_back(ws);
    vs_rr.push_back(wr);
    table.row().cell(harness::pair_label(pair)).cell(ws, 2).cell(wr, 2);
  }
  bench::emit("generality_biglittle", table);
  std::cout << "\nmean: vs static " << mathx::mean(vs_static)
            << "%   vs Round-Robin " << mathx::mean(vs_rr) << "%\n";
  std::cout << "Shape: counter-driven scheduling transfers to size-"
               "asymmetric cores — clearly positive vs Round-Robin, and "
               "near-neutral vs static at CI scale (utility decisions need "
               "two persistent intervals, which is late in a short run; "
               "AMPS_SCALE=paper amortizes that). Biggest wins come from "
               "pairs mixing memory-bound and compute-bound threads.\n";
  return 0;
}
