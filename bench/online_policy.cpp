// Online vs offline policy bench (DESIGN.md §13, EXPERIMENTS.md): the
// offline HPE models are frozen profiles of the 9 representative
// benchmarks, so they should measurably degrade on workloads outside that
// set, while the online learners — which fit the cross-core model during
// the run — should close (most of) the gap to an oracle profiled on the
// held-out set itself. Two pair pools:
//   * in-set:     random catalog pairs (the offline models' home turf),
//   * out-of-set: held-out generated benchmarks (workload/heldout.hpp)
//                 plus one Saez-style asymmetry-aware data-parallel pair.
// Results go to stdout and BENCH_online.json (machine-readable; consumed
// by scripts/check_perf.sh's informational report).
//
// Knobs: AMPS_SCALE, AMPS_PAIRS, AMPS_SEED, AMPS_ONLINE_ALPHA,
// AMPS_ONLINE_EPSILON, AMPS_ONLINE_WARMUP, AMPS_HELDOUT_COUNT,
// AMPS_HELDOUT_CHUNK (see docs/CONFIG.md).
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <vector>

#include "bench_common.hpp"
#include "core/online_model.hpp"
#include "core/oracle.hpp"
#include "core/profiler.hpp"
#include "harness/lanes.hpp"
#include "mathx/stats.hpp"
#include "metrics/speedup.hpp"
#include "workload/heldout.hpp"

namespace {

using namespace amps;

/// Bit-exact result comparison (mirrors the differential-fuzz notion of
/// identity; lane_occupancy_pct is execution metadata and excluded).
bool identical(const metrics::PairRunResult& a,
               const metrics::PairRunResult& b) {
  if (a.total_cycles != b.total_cycles || a.swap_count != b.swap_count ||
      a.decision_points != b.decision_points ||
      a.total_energy != b.total_energy ||
      a.windows_observed != b.windows_observed ||
      a.forced_swap_count != b.forced_swap_count ||
      a.decisions_by_reason != b.decisions_by_reason ||
      a.hit_cycle_bound != b.hit_cycle_bound)
    return false;
  for (int i = 0; i < 2; ++i) {
    const metrics::ThreadRunStats& x = a.threads[i];
    const metrics::ThreadRunStats& y = b.threads[i];
    if (x.committed != y.committed || x.cycles != y.cycles ||
        x.energy != y.energy || x.ipc != y.ipc ||
        x.ipc_per_watt != y.ipc_per_watt || x.swaps != y.swaps)
      return false;
  }
  return true;
}

struct SetResult {
  double improvement_pct = 0.0;  ///< mean weighted IPC/Watt gain vs static
  double swaps = 0.0;            ///< mean swaps per run
};

}  // namespace

int main() {
  const auto ctx = bench::make_context(/*default_pairs=*/8);
  bench::print_header("Online-learning policies — in-set vs out-of-set", ctx);

  const wl::BenchmarkCatalog catalog;
  const harness::ExperimentRunner runner(ctx.scale);
  const auto models = bench::build_models(runner, catalog);

  // Learner knobs (docs/CONFIG.md "Online-learning policies").
  sched::OnlineRegressionConfig rls_cfg;
  rls_cfg.window_size = ctx.scale.window_size;
  rls_cfg.model.forgetting = env_online_alpha(rls_cfg.model.forgetting);
  rls_cfg.model.warmup = static_cast<std::uint64_t>(
      env_online_warmup(static_cast<std::int64_t>(rls_cfg.model.warmup)));
  sched::BanditConfig bandit_cfg;
  bandit_cfg.window_size = ctx.scale.window_size;
  bandit_cfg.epsilon = env_online_epsilon(bandit_cfg.epsilon);
  // The bandit's warmup counts decisions (each spanning several windows),
  // so it takes a third of the shared knob's window-granular value.
  bandit_cfg.warmup = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             env_online_warmup(static_cast<std::int64_t>(
                 3 * bandit_cfg.warmup))) / 3);
  bandit_cfg.seed = ctx.seed;

  // In-set: random catalog pairs, the offline profile's home distribution.
  const auto inset_pairs = harness::sample_pairs(catalog, ctx.pairs, ctx.seed);

  // Out-of-set: held-out benchmarks + the asymmetry-aware data-parallel
  // pair. Specs live in one stable vector; pairs point into it. The
  // generator emits adjacent couples of two shapes (pair.first starts on
  // the INT core): GAIN couples begin with both threads misassigned and
  // reward one corrective swap, TRAP couples are already truth-optimal and
  // punish any model whose exaggerated decoy prediction swaps them.
  wl::HeldoutConfig hcfg;
  hcfg.count = static_cast<int>(
      env_heldout_count(std::max(4, 2 * ctx.pairs)));
  hcfg.seed = ctx.seed + 17;
  std::vector<wl::BenchmarkSpec> heldout = wl::heldout_benchmarks(hcfg);
  wl::DataParallelConfig dcfg;
  dcfg.chunk = static_cast<std::uint64_t>(
      env_heldout_chunk(static_cast<std::int64_t>(dcfg.chunk)));
  auto dp = wl::data_parallel_pair(dcfg);
  heldout.push_back(std::move(dp.first));
  heldout.push_back(std::move(dp.second));
  std::vector<harness::BenchmarkPair> outset_pairs;
  for (std::size_t i = 0; i + 1 < heldout.size() - 2 &&
                          outset_pairs.size() <
                              static_cast<std::size_t>(ctx.pairs);
       i += 2)
    outset_pairs.push_back({&heldout[i], &heldout[i + 1]});
  outset_pairs.push_back(
      {&heldout[heldout.size() - 2], &heldout[heldout.size() - 1]});

  // The out-of-set oracle: offline models refit by profiling the held-out
  // set itself — the in-distribution upper bound an online learner chases.
  std::cout << "[profiling the " << heldout.size()
            << " held-out benchmarks on both cores...]" << std::endl;
  sched::ProfilerConfig pcfg;
  pcfg.run_length = ctx.scale.run_length;
  pcfg.sample_interval =
      std::max<Cycles>(1, ctx.scale.context_switch_interval / 6);
  const sched::Profiler profiler(runner.int_core(), runner.fp_core(), pcfg);
  std::vector<const wl::BenchmarkSpec*> heldout_ptrs;
  for (const auto& spec : heldout) heldout_ptrs.push_back(&spec);
  const auto heldout_samples = profiler.profile_all(heldout_ptrs);
  sched::RegressionSurface heldout_oracle(2);
  heldout_oracle.fit(heldout_samples);
  if (env_int("AMPS_DEBUG_SURFACE", 0) != 0) {
    for (const auto& spec : heldout) {
      std::vector<sched::ProfileSample> samples;
      profiler.profile(spec, &samples);
      for (const auto& s : samples) {
        std::cout << "  " << spec.name << ": int=" << s.int_pct
                  << " fp=" << s.fp_pct << " ratio=" << s.ratio << " fit="
                  << heldout_oracle.predict_ratio(s.int_pct, s.fp_pct)
                  << " offline="
                  << models.regression->predict_ratio(s.int_pct, s.fp_pct)
                  << "\n";
      }
    }
  }

  const auto oracle_factory = [&](const sched::HpePredictionModel& model) {
    sched::OracleConfig cfg;
    cfg.window_size = ctx.scale.window_size;
    // Window-granular reference, but damped: without a real cooldown the
    // estimate rule thrashes pairs whose two ratios are similar and large,
    // and without hysteresis a chunked loop's short INT-heavy sync windows
    // flip the estimate over threshold once per chunk.
    cfg.swap_cooldown = std::max<Cycles>(
        cfg.swap_cooldown, ctx.scale.context_switch_interval / 8);
    cfg.persistence = 4;
    return harness::SchedulerFactory([cfg, &model] {
      return std::make_unique<sched::OracleScheduler>(model, cfg);
    });
  };

  struct Variant {
    const char* slug;
    const char* label;
    harness::SchedulerFactory factory;
  };
  const auto run_set = [&](std::span<const harness::BenchmarkPair> pairs,
                           const sched::HpePredictionModel& oracle_model) {
    const Variant variants[] = {
        {"proposed", "proposed (offline rules)", runner.proposed_factory()},
        {"hpe", "hpe-regression (offline profile)",
         runner.hpe_factory(*models.regression)},
        {"online_rls", "online-regression (RLS)",
         runner.online_regression_factory(rls_cfg)},
        {"bandit", "bandit-swap (epsilon-greedy)",
         runner.bandit_factory(bandit_cfg)},
        {"oracle", "oracle (offline profile of this set)",
         oracle_factory(oracle_model)},
    };
    std::vector<metrics::PairRunResult> base;
    for (const auto& p : pairs)
      base.push_back(runner.run_pair(p, runner.static_factory()));
    std::vector<std::pair<std::string, SetResult>> out;
    for (const Variant& v : variants) {
      std::vector<double> improvements;
      double swaps = 0.0;
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        const auto r = runner.run_pair(pairs[i], v.factory);
        improvements.push_back(
            metrics::to_improvement_pct(r.weighted_ipw_speedup_vs(base[i])));
        swaps += static_cast<double>(r.swap_count);
        if (env_int("AMPS_DEBUG_PAIRS", 0) != 0)
          std::printf("    %-10s %s+%s: %+6.2f%%  swaps=%llu\n", v.slug,
                      pairs[i].first->name.c_str(),
                      pairs[i].second->name.c_str(), improvements.back(),
                      static_cast<unsigned long long>(r.swap_count));
      }
      out.emplace_back(v.slug,
                       SetResult{mathx::mean(improvements),
                                 swaps / static_cast<double>(pairs.size())});
    }
    return out;
  };

  bench::Stopwatch watch;
  const auto inset = run_set(inset_pairs, *models.regression);
  const auto outset = run_set(outset_pairs, heldout_oracle);
  const auto find = [](const auto& rows, const char* slug) {
    for (const auto& [s, r] : rows)
      if (s == slug) return r;
    return SetResult{};
  };

  Table table({"policy", "in-set vs static %", "out-of-set vs static %",
               "delta pp", "swaps in", "swaps out"});
  const char* slugs[] = {"proposed", "hpe", "online_rls", "bandit", "oracle"};
  for (const char* slug : slugs) {
    const SetResult in = find(inset, slug);
    const SetResult out = find(outset, slug);
    table.row()
        .cell(slug)
        .cell(in.improvement_pct, 2)
        .cell(out.improvement_pct, 2)
        .cell(out.improvement_pct - in.improvement_pct, 2)
        .cell(in.swaps, 1)
        .cell(out.swaps, 1);
  }
  bench::emit("online_policy", table);

  // Acceptance shape: offline degrades out-of-set; the best online learner
  // recovers at least half the gap to the set-specific oracle.
  const SetResult hpe_in = find(inset, "hpe");
  const SetResult hpe_out = find(outset, "hpe");
  const SetResult rls_out = find(outset, "online_rls");
  const SetResult bandit_out = find(outset, "bandit");
  const SetResult oracle_out = find(outset, "oracle");
  const double online_best =
      std::max(rls_out.improvement_pct, bandit_out.improvement_pct);
  const double gap = oracle_out.improvement_pct - hpe_out.improvement_pct;
  const double recovery =
      gap > 0.1 ? (online_best - hpe_out.improvement_pct) / gap : 0.0;
  const bool offline_degrades =
      hpe_out.improvement_pct < hpe_in.improvement_pct;
  const bool online_recovers = recovery >= 0.5;

  // Bit-identity spot check on the first out-of-set pair: batched scalar,
  // per-cycle, and a 4-wide lockstep lane must agree bit-for-bit for both
  // online families (the fuzz suite covers this exhaustively; the bench
  // records it next to the numbers it vouches for).
  harness::ExperimentRunner per_cycle(ctx.scale);
  per_cycle.set_batched_stepping(false);
  bool bit_identical = true;
  const harness::BenchmarkPair probe = outset_pairs.front();
  const auto check_scheduler = [&](auto make) {
    auto s_batched = make();
    auto s_cycle = make();
    auto s_lane = make();
    const auto r_batched = runner.run_pair(probe, *s_batched);
    const auto r_cycle = per_cycle.run_pair(probe, *s_cycle);
    harness::LanePairJob job;
    job.runner = &runner;
    job.pair = probe;
    job.scheduler = s_lane.get();
    const auto r_lane =
        harness::run_pair_jobs(std::span<const harness::LanePairJob>(&job, 1),
                               /*lanes=*/4);
    if (!identical(r_batched, r_cycle) ||
        !identical(r_batched, r_lane.front()))
      bit_identical = false;
  };
  check_scheduler([&] {
    return std::make_unique<sched::OnlineRegressionScheduler>(rls_cfg);
  });
  check_scheduler(
      [&] { return std::make_unique<sched::BanditSwapScheduler>(bandit_cfg); });

  std::cout << "\noffline out-of-set delta: "
            << hpe_out.improvement_pct - hpe_in.improvement_pct
            << " pp  |  gap to set oracle: " << gap
            << " pp  |  best-online recovery: " << recovery * 100.0
            << " %  |  bit-identical: " << (bit_identical ? "yes" : "NO")
            << "  (" << watch.seconds() << " s)\n";

  std::ofstream json("BENCH_online.json");
  if (json) {
    json << "{\n"
         << "  \"scale\": \"" << (env_paper_scale() ? "paper" : "ci")
         << "\",\n"
         << "  \"seed\": " << ctx.seed << ",\n"
         << "  \"pairs\": " << inset_pairs.size() << ",\n"
         << "  \"outset_pairs\": " << outset_pairs.size() << ",\n"
         << "  \"heldout_benchmarks\": " << heldout.size() << ",\n"
         << "  \"online_alpha\": " << rls_cfg.model.forgetting << ",\n"
         << "  \"online_epsilon\": " << bandit_cfg.epsilon << ",\n"
         << "  \"online_warmup\": " << rls_cfg.model.warmup << ",\n";
    for (const char* slug : slugs) {
      json << "  \"" << slug
           << "_inset_improvement_pct\": " << find(inset, slug).improvement_pct
           << ",\n"
           << "  \"" << slug << "_outset_improvement_pct\": "
           << find(outset, slug).improvement_pct << ",\n";
    }
    json << "  \"offline_outset_delta_pp\": "
         << hpe_out.improvement_pct - hpe_in.improvement_pct << ",\n"
         << "  \"offline_degrades_outset\": "
         << (offline_degrades ? "true" : "false") << ",\n"
         << "  \"oracle_gap_pp\": " << gap << ",\n"
         << "  \"online_gap_recovery\": " << recovery << ",\n"
         << "  \"online_recovers_half_gap\": "
         << (online_recovers ? "true" : "false") << ",\n"
         << "  \"online_bit_identical\": "
         << (bit_identical ? "true" : "false") << "\n}\n";
    std::cout << "wrote BENCH_online.json\n";
  } else {
    std::cerr << "[warn] cannot write BENCH_online.json\n";
  }
  return 0;
}
