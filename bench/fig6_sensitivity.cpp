// Paper Fig. 6: sensitivity of the proposed scheme's weighted IPC/Watt
// improvement over HPE to the monitoring window size {500, 1000, 2000} and
// history depth {5, 10}. The paper reports the best cell at 1000 x 5 and
// only marginal differences across cells.
#include <iostream>

#include "bench_common.hpp"
#include "harness/sensitivity.hpp"
#include "mathx/stats.hpp"

int main() {
  using namespace amps;
  const auto ctx = bench::make_context(/*default_pairs=*/12);
  bench::print_header(
      "Fig. 6 — window size x history depth sensitivity (vs HPE)", ctx);

  const wl::BenchmarkCatalog catalog;
  const harness::ExperimentRunner runner(ctx.scale);
  const auto models = bench::build_models(runner, catalog);
  const auto pairs = harness::sample_pairs(catalog, ctx.pairs, ctx.seed);

  const auto cells =
      harness::run_sensitivity(runner, pairs, *models.regression);

  Table table({"window_history", "mean weighted IPC/Watt improvement %"});
  double best = -1e9;
  std::string best_label;
  std::vector<double> all;
  for (const auto& c : cells) {
    const std::string label =
        std::to_string(c.window_size) + "_" + std::to_string(c.history_depth);
    table.row().cell(label).cell(c.mean_weighted_improvement_pct, 2);
    all.push_back(c.mean_weighted_improvement_pct);
    if (c.mean_weighted_improvement_pct > best) {
      best = c.mean_weighted_improvement_pct;
      best_label = label;
    }
  }
  bench::emit("fig6", table);
  std::cout << "\nbest cell: " << best_label << " (" << best
            << "%)   overall mean: " << mathx::mean(all)
            << "%   spread (max-min): " << mathx::max_of(all) - mathx::min_of(all)
            << "%\n";
  std::cout << "Paper shape: best at 1000_5; small changes in window/history "
               "have only marginal impact.\n";
  return 0;
}
