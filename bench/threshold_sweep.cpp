// Design-choice ablation: how sensitive is the proposed scheme to the
// Fig. 5 rule thresholds? The paper derives (55, 35, 20, 7) offline from
// nine profiled benchmarks; this sweep perturbs the two surge thresholds
// and reports the mean weighted IPC/Watt improvement over the static
// baseline. Expected shape: a broad plateau around the paper's values —
// the rules are robust, which is why offline derivation is viable.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/proposed.hpp"
#include "mathx/stats.hpp"
#include "metrics/speedup.hpp"

int main() {
  using namespace amps;
  const auto ctx = bench::make_context(/*default_pairs=*/8);
  bench::print_header("Ablation — Fig. 5 threshold sensitivity (vs static)",
                      ctx);

  const wl::BenchmarkCatalog catalog;
  const harness::ExperimentRunner runner(ctx.scale);
  const auto pairs = harness::sample_pairs(catalog, ctx.pairs, ctx.seed);

  std::vector<metrics::PairRunResult> base;
  for (const auto& p : pairs)
    base.push_back(runner.run_pair(p, runner.static_factory()));

  auto evaluate = [&](double int_surge, double fp_surge) {
    sched::ProposedConfig cfg;
    cfg.window_size = ctx.scale.window_size;
    cfg.history_depth = ctx.scale.history_depth;
    cfg.forced_swap_interval = ctx.scale.context_switch_interval;
    cfg.thresholds.int_surge = int_surge;
    cfg.thresholds.fp_surge = fp_surge;
    std::vector<double> improvements;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      auto sched = std::make_unique<sched::ProposedScheduler>(cfg);
      const auto r = runner.run_pair(pairs[i], *sched);
      improvements.push_back(
          metrics::to_improvement_pct(r.weighted_ipw_speedup_vs(base[i])));
    }
    return mathx::mean(improvements);
  };

  Table table({"int_surge \\ fp_surge", "15", "20 (paper)", "25"});
  for (const double int_surge : {45.0, 55.0, 65.0}) {
    const std::string label = int_surge == 55.0
                                  ? format_double(int_surge, 0) + " (paper)"
                                  : format_double(int_surge, 0);
    table.row().cell(label);
    for (const double fp_surge : {15.0, 20.0, 25.0})
      table.cell(evaluate(int_surge, fp_surge), 2);
  }
  bench::emit("threshold_sweep", table);
  std::cout << "\nShape: a plateau around the paper's (55, 20) — the exact "
               "thresholds are second-order, so deriving them offline from "
               "nine benchmarks generalizes.\n";
  return 0;
}
