// Open-system sweep: a Poisson job stream on the canonical 4-core AMP
// (2 INT + 2 FP), oversubscribed (default 12 jobs, 3x the cores), with
// per-core run queues, idle-core steal, optional time slicing, and modeled
// I/O blocking. Each scheduler family — static placement, the
// global-affinity generalization of the paper's scheme, and rotating
// Round-Robin — serves the identical arrival schedule, so the open-system
// serving metrics (turnaround, wait, p99 latency, fairness slowdown)
// isolate the placement policy.
//
// Results go to stdout and BENCH_open.json (machine-readable;
// scripts/check_perf.sh reports the p99-turnaround and migration shape
// informationally when the file is present).
//
// Knobs: AMPS_SCALE, AMPS_SEED, AMPS_LANES,
//        AMPS_ARRIVAL_JOBS        jobs in the stream (default 12),
//        AMPS_ARRIVAL_LAMBDA      jobs per 1000 cycles (default 0.25),
//        AMPS_ARRIVAL_QUANTUM     preemption quantum cycles (default
//                                 interval/8; 0 disables slicing),
//        AMPS_ARRIVAL_IO_INTERVAL instrs between I/O stalls (default
//                                 run_length/16; 0 = CPU-bound),
//        AMPS_ARRIVAL_IO_LATENCY  cycles blocked per stall (default 2000).
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness/lanes.hpp"
#include "harness/multicore.hpp"
#include "workload/arrivals.hpp"

namespace {

using namespace amps;

constexpr std::size_t kCores = 4;

struct Row {
  std::string slug;  ///< json key prefix
  metrics::OpenRunResult result;
};

}  // namespace

int main() {
  const auto ctx = bench::make_context(/*default_pairs=*/2);
  bench::print_header(
      "open system — Poisson arrivals, oversubscribed run queues, 4-core AMP",
      ctx);

  const wl::BenchmarkCatalog catalog;

  wl::PoissonConfig pcfg;
  pcfg.count = static_cast<std::size_t>(
      std::max<std::int64_t>(1, env_arrival_jobs(12)));
  pcfg.jobs_per_kilocycle = env_arrival_lambda(0.25);
  pcfg.min_job_length = ctx.scale.run_length / 8;
  pcfg.max_job_length = ctx.scale.run_length / 2;
  pcfg.io.stall_interval = static_cast<InstrCount>(std::max<std::int64_t>(
      0, env_arrival_io_interval(
             static_cast<std::int64_t>(ctx.scale.run_length / 16))));
  pcfg.io.stall_latency = static_cast<Cycles>(
      std::max<std::int64_t>(0, env_arrival_io_latency(2000)));
  const wl::ArrivalSchedule schedule =
      wl::poisson_arrivals(catalog, pcfg, env_seed());

  sim::OpenConfig open_cfg;
  open_cfg.quantum = static_cast<Cycles>(std::max<std::int64_t>(
      0, env_arrival_quantum(
             static_cast<std::int64_t>(ctx.scale.context_switch_interval / 8))));
  open_cfg.dispatch_overhead = ctx.scale.swap_overhead;

  std::cout << "jobs=" << schedule.size() << " on " << kCores
            << " cores (oversubscription "
            << static_cast<double>(schedule.size()) / kCores
            << "x), lambda=" << pcfg.jobs_per_kilocycle
            << "/kcycle, quantum=" << open_cfg.quantum
            << ", io_interval=" << pcfg.io.stall_interval
            << ", io_latency=" << pcfg.io.stall_latency << "\n\n";

  const harness::MulticoreRunner runner =
      harness::MulticoreRunner::canonical(ctx.scale, kCores);
  const auto affinity = runner.affinity_factory();
  const auto rr = runner.round_robin_factory();
  const auto stat = runner.static_factory();

  const std::vector<harness::LaneOpenJob> jobs = {
      {&runner, &schedule, &open_cfg, harness::OpenStop::kAllExited, &stat,
       nullptr, nullptr},
      {&runner, &schedule, &open_cfg, harness::OpenStop::kAllExited,
       &affinity, nullptr, nullptr},
      {&runner, &schedule, &open_cfg, harness::OpenStop::kAllExited, &rr,
       nullptr, nullptr},
  };
  const auto results =
      harness::run_open_jobs(jobs, harness::lane_width(jobs.size()));

  const std::vector<Row> rows = {{"static", results[0]},
                                 {"affinity", results[1]},
                                 {"rr", results[2]}};

  Table table({"scheduler", "finished", "p50 turn", "p99 turn", "mean wait",
               "p99 wait", "slowdown", "migr", "steals", "preempt",
               "jobs/Mcyc"});
  for (const Row& row : rows) {
    const metrics::OpenRunResult& r = row.result;
    table.row()
        .cell(r.closed.scheduler)
        .cell(static_cast<long long>(r.jobs_finished))
        .cell(r.p50_turnaround, 0)
        .cell(r.p99_turnaround, 0)
        .cell(r.mean_wait, 0)
        .cell(r.p99_wait, 0)
        .cell(r.mean_slowdown, 2)
        .cell(static_cast<long long>(r.total_migrations))
        .cell(static_cast<long long>(r.total_steals))
        .cell(static_cast<long long>(r.total_preemptions))
        .cell(r.throughput_jobs_per_mcycle(), 2);
  }
  bench::emit("open_system", table);
  std::cout << "\nShape: every scheduler drains the same oversubscribed "
               "stream; queueing (wait) dominates turnaround tails, and the "
               "affinity scheme's placement swaps ride on top of the "
               "run-queue migrations all families share.\n";

  std::ofstream json("BENCH_open.json");
  if (json) {
    json << "{\n"
         << "  \"scale\": \"" << (env_paper_scale() ? "paper" : "ci")
         << "\",\n"
         << "  \"seed\": " << env_seed() << ",\n"
         << "  \"cores\": " << kCores << ",\n"
         << "  \"jobs\": " << schedule.size() << ",\n"
         << "  \"lambda_per_kcycle\": " << pcfg.jobs_per_kilocycle << ",\n"
         << "  \"quantum\": " << open_cfg.quantum << ",\n"
         << "  \"io_interval\": " << pcfg.io.stall_interval << ",\n"
         << "  \"io_latency\": " << pcfg.io.stall_latency << ",\n";
    for (const Row& row : rows) {
      const metrics::OpenRunResult& r = row.result;
      json << "  \"" << row.slug << "_jobs_finished\": " << r.jobs_finished
           << ",\n"
           << "  \"" << row.slug << "_p50_turnaround\": " << r.p50_turnaround
           << ",\n"
           << "  \"" << row.slug << "_p99_turnaround\": " << r.p99_turnaround
           << ",\n"
           << "  \"" << row.slug << "_mean_wait\": " << r.mean_wait << ",\n"
           << "  \"" << row.slug << "_p99_wait\": " << r.p99_wait << ",\n"
           << "  \"" << row.slug << "_mean_slowdown\": " << r.mean_slowdown
           << ",\n"
           << "  \"" << row.slug << "_max_slowdown\": " << r.max_slowdown
           << ",\n"
           << "  \"" << row.slug << "_migrations\": " << r.total_migrations
           << ",\n"
           << "  \"" << row.slug << "_steals\": " << r.total_steals << ",\n"
           << "  \"" << row.slug
           << "_preemptions\": " << r.total_preemptions << ",\n"
           << "  \"" << row.slug << "_throughput_jobs_per_mcycle\": "
           << r.throughput_jobs_per_mcycle() << ",\n";
    }
    json << "  \"schedulers\": " << rows.size() << "\n}\n";
    std::cout << "wrote BENCH_open.json\n";
  } else {
    std::cerr << "[warn] cannot write BENCH_open.json\n";
  }
  return 0;
}
