// The original HPE work's other asymmetry style (§V: a core that "runs at
// a higher frequency, while the other ... at a lower frequency"): two
// microarchitecturally identical cores, one at full clock and one at half
// clock / reduced voltage. The same counter-driven methodology applies:
// the utility-factor scheduler sends memory-bound threads (which barely
// lose performance at half clock) to the slow, efficient core and keeps
// compute-bound threads on the fast one.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/round_robin.hpp"
#include "core/utility.hpp"
#include "mathx/stats.hpp"
#include "metrics/speedup.hpp"

int main() {
  using namespace amps;
  const auto ctx = bench::make_context(/*default_pairs=*/10);
  bench::print_header(
      "HPE-style frequency asymmetry: fast core + half-clock core", ctx);

  const wl::BenchmarkCatalog catalog;
  const harness::ExperimentRunner runner(ctx.scale, sim::fast_core_config(),
                                         sim::slow_core_config());
  const auto pairs = harness::sample_pairs(catalog, ctx.pairs, ctx.seed);

  auto utility_factory = [&]() {
    sched::UtilityConfig cfg;
    cfg.decision_interval = ctx.scale.context_switch_interval;
    cfg.big_core_index = 0;  // the fast core plays the "big" role
    // Half clock costs compute-bound threads ~2x: demand a much larger
    // utility gap than on the big/little pair before paying a swap.
    cfg.swap_margin = 1.35;
    return harness::SchedulerFactory(
        [cfg] { return std::make_unique<sched::UtilityScheduler>(cfg); });
  };

  Table table({"workload pair", "utility vs static %", "utility vs RR %"});
  std::vector<double> vs_static, vs_rr;
  for (const auto& pair : pairs) {
    const auto stat = runner.run_pair(pair, runner.static_factory());
    const auto rr = runner.run_pair(pair, runner.round_robin_factory());
    const auto util = runner.run_pair(pair, utility_factory());
    const double ws =
        metrics::to_improvement_pct(util.weighted_ipw_speedup_vs(stat));
    const double wr =
        metrics::to_improvement_pct(util.weighted_ipw_speedup_vs(rr));
    vs_static.push_back(ws);
    vs_rr.push_back(wr);
    table.row().cell(harness::pair_label(pair)).cell(ws, 2).cell(wr, 2);
  }
  bench::emit("generality_frequency", table);
  std::cout << "\nmeans: vs static " << mathx::mean(vs_static)
            << "%   vs Round-Robin " << mathx::mean(vs_rr) << "%\n";
  std::cout << "Shape: the counter-driven machinery transfers unchanged and "
               "crushes Round-Robin (which drags compute-bound threads onto "
               "the half-clock core). The slightly negative vs-static column "
               "is itself instructive: the utility policy optimizes "
               "*performance*, but at half clock/voltage the slow core is "
               "the IPC-per-watt sweet spot for nearly every thread, so "
               "performance-driven swaps onto the fast core give up "
               "efficiency — exactly why the paper derives its rules "
               "against the performance/watt objective directly (§III).\n";
  return 0;
}
