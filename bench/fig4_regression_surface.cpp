// Paper Fig. 4: the non-linear regression fit of the performance/watt
// ratio surface over (%INT, %FP), derived from the same profiling samples
// as the Fig. 3 matrix. Prints the fitted coefficients, the fit quality
// and a grid of surface values (the textual equivalent of the 3-D plot).
#include <iostream>

#include "bench_common.hpp"
#include "mathx/least_squares.hpp"

int main() {
  using namespace amps;
  const auto ctx = bench::make_context(0);
  bench::print_header(
      "Fig. 4 — regression surface: IPC/Watt ratio = f(%INT, %FP)", ctx);

  const wl::BenchmarkCatalog catalog;
  const harness::ExperimentRunner runner(ctx.scale);
  const auto models = bench::build_models(runner, catalog);
  const auto& surf = *models.regression;

  std::cout << "samples: " << models.samples.size()
            << "   degree: " << surf.poly().degree()
            << "   R^2 on training samples: " << surf.r2() << "\n\n";

  std::cout << "coefficients (basis 1, x1, x2, x1^2, x1*x2, x2^2; "
               "x1=%INT/100, x2=%FP/100):\n  ";
  for (double c : surf.poly().coefficients()) std::cout << c << "  ";
  std::cout << "\n\nsurface grid (rows %INT, cols %FP):\n";

  Table grid({"INT% \\ FP%", "0", "20", "40", "60", "80", "100"});
  for (int int_pct = 0; int_pct <= 100; int_pct += 20) {
    grid.row().cell(std::to_string(int_pct));
    for (int fp_pct = 0; fp_pct <= 100; fp_pct += 20)
      grid.cell(surf.predict_ratio(int_pct, fp_pct), 2);
  }
  bench::emit("fig4_grid", grid);
  std::cout << "\nShape: ratio rises with %INT (INT core wins) and falls "
               "with %FP (FP core wins), matching the paper's 3-D plot.\n";
  return 0;
}
